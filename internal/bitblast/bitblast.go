// Package bitblast lowers QF_BV terms (internal/smt) to CNF over a CDCL
// SAT solver (internal/sat) using Tseitin encoding. Together with those two
// packages it forms the from-scratch replacement for the Z3 calls the bf4
// paper makes: boolean structure becomes gates, bitvector operations become
// ripple-carry/borrow/barrel-shifter circuits, and each distinct term is
// blasted exactly once per Context (the smt layer's hash-consing guarantees
// syntactic duplicates share circuitry).
package bitblast

import (
	"fmt"
	"math/big"

	"bf4/internal/sat"
	"bf4/internal/smt"
)

// Context owns the term→literal mapping for one SAT solver instance.
// A Context is incremental: terms may be blasted and clauses added across
// multiple Solve calls on the underlying solver.
type Context struct {
	f   *smt.Factory
	s   *sat.Solver
	lit map[*smt.Term]sat.Lit   // boolean terms
	bv  map[*smt.Term][]sat.Lit // bitvector terms, LSB first

	litTrue  sat.Lit
	litFalse sat.Lit
	started  bool

	// Structural gate hashing (enabled by SetStructHash): gate
	// constructors memoize their output literal by canonicalized input
	// literals, so equal sub-circuits reached through different terms emit
	// CNF once. Entries mentioning variables removed by solver
	// inprocessing are purged via ForgetEliminated — a purged gate's
	// defining clauses are gone, so its output must never be reused.
	structHash bool
	andMemo    map[string]sat.Lit
	xorMemo    map[[2]sat.Lit]sat.Lit
	iteMemo    map[[3]sat.Lit]sat.Lit
	gateHits   int64
}

// New returns a Context blasting terms from f into s.
func New(f *smt.Factory, s *sat.Solver) *Context {
	return &Context{
		f:   f,
		s:   s,
		lit: make(map[*smt.Term]sat.Lit),
		bv:  make(map[*smt.Term][]sat.Lit),
	}
}

// SetStructHash toggles structural gate hashing. Turn it on before
// blasting anything; gates emitted earlier are not retroactively shared.
func (c *Context) SetStructHash(on bool) {
	c.structHash = on
	if on && c.andMemo == nil {
		c.andMemo = make(map[string]sat.Lit)
		c.xorMemo = make(map[[2]sat.Lit]sat.Lit)
		c.iteMemo = make(map[[3]sat.Lit]sat.Lit)
	}
}

// GateHits returns how many gate constructions were answered from the
// structural hash instead of emitting fresh CNF.
func (c *Context) GateHits() int64 { return c.gateHits }

// ForgetEliminated drops every structural-hash entry that mentions one of
// the given (inprocessing-eliminated) variables, as input or output. The
// term-level memos never need purging: every literal stored there is
// frozen and thus never eliminated.
func (c *Context) ForgetEliminated(vars []sat.Var) {
	if len(vars) == 0 || !c.structHash {
		return
	}
	dead := make(map[sat.Var]bool, len(vars))
	for _, v := range vars {
		dead[v] = true
	}
	for k, y := range c.andMemo {
		drop := dead[y.Var()]
		for i := 0; !drop && i+3 < len(k); i += 4 {
			l := sat.Lit(uint32(k[i]) | uint32(k[i+1])<<8 | uint32(k[i+2])<<16 | uint32(k[i+3])<<24)
			drop = dead[l.Var()]
		}
		if drop {
			delete(c.andMemo, k)
		}
	}
	for k, y := range c.xorMemo {
		if dead[y.Var()] || dead[k[0].Var()] || dead[k[1].Var()] {
			delete(c.xorMemo, k)
		}
	}
	for k, y := range c.iteMemo {
		if dead[y.Var()] || dead[k[0].Var()] || dead[k[1].Var()] || dead[k[2].Var()] {
			delete(c.iteMemo, k)
		}
	}
}

func (c *Context) ensureConsts() {
	if c.started {
		return
	}
	c.started = true
	v := c.s.NewVar()
	c.litTrue = sat.MkLit(v, false)
	c.litFalse = c.litTrue.Neg()
	c.s.Freeze(v)
	c.s.AddClause(c.litTrue)
}

// Solver returns the underlying SAT solver.
func (c *Context) Solver() *sat.Solver { return c.s }

// freshLit allocates a new SAT variable and returns its positive literal.
func (c *Context) freshLit() sat.Lit { return sat.MkLit(c.s.NewVar(), false) }

// Literal returns a SAT literal equivalent to the boolean term t,
// introducing Tseitin definitions as needed.
func (c *Context) Literal(t *smt.Term) sat.Lit {
	c.ensureConsts()
	if !t.Sort().IsBool() {
		panic(fmt.Sprintf("bitblast: Literal on non-boolean term %s", t))
	}
	if l, ok := c.lit[t]; ok {
		return l
	}
	l := c.blastBool(t)
	c.lit[t] = l
	// The term memo outlives any Inprocess pass: its literals are read by
	// models, assumptions, and future blasts, so they must never be
	// eliminated.
	c.s.Freeze(l.Var())
	return l
}

// AssertTrue constrains t to hold in every model.
func (c *Context) AssertTrue(t *smt.Term) {
	c.s.AddClause(c.Literal(t))
}

// AssertImplied adds clauses equivalent to guard → t without routing the
// implication through a Tseitin gate: top-level conjunctions of t split
// into one guarded clause per conjunct. When the guard is an activation
// literal that later becomes false at level 0, each guard clause is
// satisfied outright and inprocessing deletes it, instead of leaving a
// dead implication gate behind.
func (c *Context) AssertImplied(guard, t *smt.Term) {
	c.assertImplied(c.Literal(guard).Neg(), t)
}

func (c *Context) assertImplied(notGuard sat.Lit, t *smt.Term) {
	if t.Op() == smt.OpAnd {
		for _, a := range t.Args() {
			c.assertImplied(notGuard, a)
		}
		return
	}
	c.s.AddClause(notGuard, c.Literal(t))
}

func (c *Context) blastBool(t *smt.Term) sat.Lit {
	switch t.Op() {
	case smt.OpTrue:
		return c.litTrue
	case smt.OpFalse:
		return c.litFalse
	case smt.OpVar:
		return c.freshLit()
	case smt.OpNot:
		return c.Literal(t.Arg(0)).Neg()
	case smt.OpAnd:
		lits := make([]sat.Lit, len(t.Args()))
		for i, a := range t.Args() {
			lits[i] = c.Literal(a)
		}
		return c.mkAnd(lits)
	case smt.OpOr:
		lits := make([]sat.Lit, len(t.Args()))
		for i, a := range t.Args() {
			lits[i] = c.Literal(a).Neg()
		}
		return c.mkAnd(lits).Neg()
	case smt.OpXor:
		return c.mkXor(c.Literal(t.Arg(0)), c.Literal(t.Arg(1)))
	case smt.OpImplies:
		return c.mkAnd([]sat.Lit{c.Literal(t.Arg(0)), c.Literal(t.Arg(1)).Neg()}).Neg()
	case smt.OpEq:
		a, b := t.Arg(0), t.Arg(1)
		if a.Sort().IsBool() {
			return c.mkXor(c.Literal(a), c.Literal(b)).Neg()
		}
		return c.mkBVEq(c.Bits(a), c.Bits(b))
	case smt.OpUlt:
		return c.mkULT(c.Bits(t.Arg(0)), c.Bits(t.Arg(1)))
	case smt.OpUle:
		return c.mkULT(c.Bits(t.Arg(1)), c.Bits(t.Arg(0))).Neg()
	case smt.OpSlt:
		return c.mkSLT(c.Bits(t.Arg(0)), c.Bits(t.Arg(1)))
	case smt.OpSle:
		return c.mkSLT(c.Bits(t.Arg(1)), c.Bits(t.Arg(0))).Neg()
	case smt.OpIte:
		// Boolean ite is normalized away by the factory, but handle it for
		// robustness.
		cond := c.Literal(t.Arg(0))
		return c.mkIte(cond, c.Literal(t.Arg(1)), c.Literal(t.Arg(2)))
	default:
		panic(fmt.Sprintf("bitblast: unexpected boolean op %v in %s", t.Op(), t))
	}
}

// Bits returns the LSB-first literal vector for bitvector term t.
func (c *Context) Bits(t *smt.Term) []sat.Lit {
	c.ensureConsts()
	if t.Sort().IsBool() {
		panic(fmt.Sprintf("bitblast: Bits on boolean term %s", t))
	}
	if bs, ok := c.bv[t]; ok {
		return bs
	}
	bs := c.blastBV(t)
	if len(bs) != t.Sort().Width {
		panic(fmt.Sprintf("bitblast: width mismatch blasting %s: got %d, want %d", t, len(bs), t.Sort().Width))
	}
	c.bv[t] = bs
	for _, l := range bs {
		c.s.Freeze(l.Var())
	}
	return bs
}

func (c *Context) blastBV(t *smt.Term) []sat.Lit {
	w := t.Sort().Width
	switch t.Op() {
	case smt.OpConst:
		bs := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			if t.Const().Bit(i) == 1 {
				bs[i] = c.litTrue
			} else {
				bs[i] = c.litFalse
			}
		}
		return bs
	case smt.OpVar:
		bs := make([]sat.Lit, w)
		for i := range bs {
			bs[i] = c.freshLit()
		}
		return bs
	case smt.OpIte:
		cond := c.Literal(t.Arg(0))
		a, b := c.Bits(t.Arg(1)), c.Bits(t.Arg(2))
		bs := make([]sat.Lit, w)
		for i := range bs {
			bs[i] = c.mkIte(cond, a[i], b[i])
		}
		return bs
	case smt.OpAdd:
		s, _ := c.mkAdder(c.Bits(t.Arg(0)), c.Bits(t.Arg(1)), c.litFalse)
		return s
	case smt.OpSub:
		b := c.Bits(t.Arg(1))
		nb := make([]sat.Lit, len(b))
		for i := range b {
			nb[i] = b[i].Neg()
		}
		s, _ := c.mkAdder(c.Bits(t.Arg(0)), nb, c.litTrue)
		return s
	case smt.OpNeg:
		a := c.Bits(t.Arg(0))
		na := make([]sat.Lit, len(a))
		for i := range a {
			na[i] = a[i].Neg()
		}
		zero := make([]sat.Lit, len(a))
		for i := range zero {
			zero[i] = c.litFalse
		}
		// -a = ~a + 1
		one := append([]sat.Lit{c.litTrue}, zero[1:]...)
		s, _ := c.mkAdder(na, one, c.litFalse)
		return s
	case smt.OpMul:
		return c.mkMul(c.Bits(t.Arg(0)), c.Bits(t.Arg(1)))
	case smt.OpBVAnd:
		return c.bitwise(t, func(x, y sat.Lit) sat.Lit { return c.mkAnd([]sat.Lit{x, y}) })
	case smt.OpBVOr:
		return c.bitwise(t, func(x, y sat.Lit) sat.Lit {
			return c.mkAnd([]sat.Lit{x.Neg(), y.Neg()}).Neg()
		})
	case smt.OpBVXor:
		return c.bitwise(t, c.mkXor)
	case smt.OpBVNot:
		a := c.Bits(t.Arg(0))
		bs := make([]sat.Lit, len(a))
		for i := range a {
			bs[i] = a[i].Neg()
		}
		return bs
	case smt.OpShl:
		return c.mkShift(t, shiftLeft)
	case smt.OpLshr:
		return c.mkShift(t, shiftRightLogical)
	case smt.OpAshr:
		return c.mkShift(t, shiftRightArith)
	case smt.OpConcat:
		hi, lo := c.Bits(t.Arg(0)), c.Bits(t.Arg(1))
		return append(append([]sat.Lit{}, lo...), hi...)
	case smt.OpExtract:
		hiIdx, loIdx := t.ExtractBounds()
		a := c.Bits(t.Arg(0))
		return append([]sat.Lit{}, a[loIdx:hiIdx+1]...)
	case smt.OpZExt:
		a := c.Bits(t.Arg(0))
		bs := append([]sat.Lit{}, a...)
		for len(bs) < w {
			bs = append(bs, c.litFalse)
		}
		return bs
	case smt.OpSExt:
		a := c.Bits(t.Arg(0))
		bs := append([]sat.Lit{}, a...)
		signBit := a[len(a)-1]
		for len(bs) < w {
			bs = append(bs, signBit)
		}
		return bs
	default:
		panic(fmt.Sprintf("bitblast: unexpected bitvector op %v in %s", t.Op(), t))
	}
}

func (c *Context) bitwise(t *smt.Term, gate func(x, y sat.Lit) sat.Lit) []sat.Lit {
	a, b := c.Bits(t.Arg(0)), c.Bits(t.Arg(1))
	bs := make([]sat.Lit, len(a))
	for i := range a {
		bs[i] = gate(a[i], b[i])
	}
	return bs
}

// mkAnd returns a literal equivalent to the conjunction of lits.
func (c *Context) mkAnd(lits []sat.Lit) sat.Lit {
	out := lits[:0:0]
	for _, l := range lits {
		if l == c.litFalse {
			return c.litFalse
		}
		if l == c.litTrue {
			continue
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		return c.litTrue
	case 1:
		return out[0]
	}
	if c.structHash {
		// Canonicalize: sort and dedupe inputs; a pair of complementary
		// inputs makes the conjunction false.
		sorted := append([]sat.Lit(nil), out...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		canon := sorted[:0]
		for i, l := range sorted {
			if i > 0 && l == sorted[i-1] {
				continue
			}
			if i > 0 && l == sorted[i-1].Neg() {
				return c.litFalse
			}
			canon = append(canon, l)
		}
		if len(canon) == 1 {
			return canon[0]
		}
		key := make([]byte, 0, 4*len(canon))
		for _, l := range canon {
			key = append(key, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
		}
		if y, ok := c.andMemo[string(key)]; ok {
			c.gateHits++
			return y
		}
		y := c.emitAnd(canon)
		c.andMemo[string(key)] = y
		return y
	}
	return c.emitAnd(out)
}

// emitAnd emits the Tseitin definition y ↔ ∧ lits and returns y.
func (c *Context) emitAnd(lits []sat.Lit) sat.Lit {
	y := c.freshLit()
	long := make([]sat.Lit, 0, len(lits)+1)
	long = append(long, y)
	for _, l := range lits {
		c.s.AddClause(y.Neg(), l) // y -> l
		long = append(long, l.Neg())
	}
	c.s.AddClause(long...) // all l -> y
	return y
}

// mkXor returns a literal equivalent to a xor b.
func (c *Context) mkXor(a, b sat.Lit) sat.Lit {
	switch {
	case a == c.litFalse:
		return b
	case b == c.litFalse:
		return a
	case a == c.litTrue:
		return b.Neg()
	case b == c.litTrue:
		return a.Neg()
	case a == b:
		return c.litFalse
	case a == b.Neg():
		return c.litTrue
	}
	if c.structHash {
		// Canonicalize: xor commutes and pulls negations to the output
		// (¬a ⊕ b = ¬(a ⊕ b)), so hash on the sorted positive forms.
		sign := a.Sign() != b.Sign()
		pa, pb := a&^1, b&^1
		if pb < pa {
			pa, pb = pb, pa
		}
		key := [2]sat.Lit{pa, pb}
		y, ok := c.xorMemo[key]
		if ok {
			c.gateHits++
		} else {
			y = c.emitXor(pa, pb)
			c.xorMemo[key] = y
		}
		if sign {
			return y.Neg()
		}
		return y
	}
	return c.emitXor(a, b)
}

// emitXor emits the Tseitin definition y ↔ a ⊕ b and returns y.
func (c *Context) emitXor(a, b sat.Lit) sat.Lit {
	y := c.freshLit()
	c.s.AddClause(y.Neg(), a, b)
	c.s.AddClause(y.Neg(), a.Neg(), b.Neg())
	c.s.AddClause(y, a.Neg(), b)
	c.s.AddClause(y, a, b.Neg())
	return y
}

// mkIte returns a literal equivalent to cond ? a : b.
func (c *Context) mkIte(cond, a, b sat.Lit) sat.Lit {
	switch {
	case cond == c.litTrue:
		return a
	case cond == c.litFalse:
		return b
	case a == b:
		return a
	case a == c.litTrue && b == c.litFalse:
		return cond
	case a == c.litFalse && b == c.litTrue:
		return cond.Neg()
	}
	if c.structHash {
		// Canonicalize: a negated condition swaps the branches, and two
		// negated branches pull the negation to the output.
		if cond.Sign() {
			cond, a, b = cond.Neg(), b, a
		}
		if a.Sign() && b.Sign() && a != c.litFalse && b != c.litFalse {
			return c.mkIte(cond, a.Neg(), b.Neg()).Neg()
		}
		key := [3]sat.Lit{cond, a, b}
		if y, ok := c.iteMemo[key]; ok {
			c.gateHits++
			return y
		}
		y := c.emitIte(cond, a, b)
		c.iteMemo[key] = y
		return y
	}
	return c.emitIte(cond, a, b)
}

// emitIte emits the Tseitin definition y ↔ (cond ? a : b) and returns y.
func (c *Context) emitIte(cond, a, b sat.Lit) sat.Lit {
	y := c.freshLit()
	c.s.AddClause(cond.Neg(), a.Neg(), y)
	c.s.AddClause(cond.Neg(), a, y.Neg())
	c.s.AddClause(cond, b.Neg(), y)
	c.s.AddClause(cond, b, y.Neg())
	// Redundant but propagation-helping: if a and b agree, y agrees.
	c.s.AddClause(a.Neg(), b.Neg(), y)
	c.s.AddClause(a, b, y.Neg())
	return y
}

// mkMaj returns the majority of three literals (carry-out of a full adder).
func (c *Context) mkMaj(a, b, d sat.Lit) sat.Lit {
	ab := c.mkAnd([]sat.Lit{a, b})
	ad := c.mkAnd([]sat.Lit{a, d})
	bd := c.mkAnd([]sat.Lit{b, d})
	return c.mkAnd([]sat.Lit{ab.Neg(), ad.Neg(), bd.Neg()}).Neg()
}

// mkAdder returns the ripple-carry sum of a and b with carry-in cin, and
// the final carry-out.
func (c *Context) mkAdder(a, b []sat.Lit, cin sat.Lit) (sum []sat.Lit, cout sat.Lit) {
	if len(a) != len(b) {
		panic("bitblast: adder width mismatch")
	}
	sum = make([]sat.Lit, len(a))
	carry := cin
	for i := range a {
		axb := c.mkXor(a[i], b[i])
		sum[i] = c.mkXor(axb, carry)
		carry = c.mkMaj(a[i], b[i], carry)
	}
	return sum, carry
}

// mkMul returns the shift-add product of a and b, truncated to len(a) bits.
func (c *Context) mkMul(a, b []sat.Lit) []sat.Lit {
	w := len(a)
	acc := make([]sat.Lit, w)
	for i := range acc {
		acc[i] = c.litFalse
	}
	for i := 0; i < w; i++ {
		if b[i] == c.litFalse {
			continue
		}
		// addend = (a << i) & b_i, truncated to w bits.
		addend := make([]sat.Lit, w)
		for j := 0; j < w; j++ {
			if j < i {
				addend[j] = c.litFalse
			} else {
				addend[j] = c.mkAnd([]sat.Lit{a[j-i], b[i]})
			}
		}
		acc, _ = c.mkAdder(acc, addend, c.litFalse)
	}
	return acc
}

// mkBVEq returns a literal equivalent to bitwise equality of a and b.
func (c *Context) mkBVEq(a, b []sat.Lit) sat.Lit {
	eqs := make([]sat.Lit, len(a))
	for i := range a {
		eqs[i] = c.mkXor(a[i], b[i]).Neg()
	}
	return c.mkAnd(eqs)
}

// mkULT returns a literal equivalent to unsigned a < b, computed as the
// borrow-out of a - b.
func (c *Context) mkULT(a, b []sat.Lit) sat.Lit {
	borrow := c.litFalse
	for i := range a {
		// borrow' = majority(~a, b, borrow)
		borrow = c.mkMaj(a[i].Neg(), b[i], borrow)
	}
	return borrow
}

// mkSLT returns a literal equivalent to signed a < b.
func (c *Context) mkSLT(a, b []sat.Lit) sat.Lit {
	w := len(a)
	am, bm := a[w-1], b[w-1]
	ult := c.mkULT(a, b)
	// Different signs: a < b iff a is negative. Same signs: unsigned order.
	return c.mkIte(c.mkXor(am, bm), am, ult)
}

type shiftKind int

const (
	shiftLeft shiftKind = iota
	shiftRightLogical
	shiftRightArith
)

// mkShift builds a barrel shifter. Shift amounts >= width produce zero
// (or all-sign for arithmetic right shift), matching smt.Eval semantics.
func (c *Context) mkShift(t *smt.Term, kind shiftKind) []sat.Lit {
	a := c.Bits(t.Arg(0))
	sh := c.Bits(t.Arg(1))
	w := len(a)
	fill := func() sat.Lit { return c.litFalse }
	if kind == shiftRightArith {
		sign := a[w-1]
		fill = func() sat.Lit { return sign }
	}
	cur := append([]sat.Lit{}, a...)
	// Process shift bits that can matter: stage k shifts by 2^k.
	for k := 0; (1 << k) < w; k++ {
		amount := 1 << k
		next := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			var shifted sat.Lit
			switch kind {
			case shiftLeft:
				if i >= amount {
					shifted = cur[i-amount]
				} else {
					shifted = c.litFalse
				}
			default:
				if i+amount < w {
					shifted = cur[i+amount]
				} else {
					shifted = fill()
				}
			}
			next[i] = c.mkIte(sh[k], shifted, cur[i])
		}
		cur = next
	}
	// If any shift bit at position >= log2(w) is set, the result saturates.
	var highBits []sat.Lit
	for k := 0; k < len(sh); k++ {
		if 1<<k >= w {
			highBits = append(highBits, sh[k].Neg())
		}
	}
	if len(highBits) > 0 {
		inRange := c.mkAnd(highBits)
		for i := range cur {
			cur[i] = c.mkIte(inRange, cur[i], fill())
		}
	}
	return cur
}

// ModelBool reads the model value of boolean term t after a Sat result.
// t must have been blasted before solving.
func (c *Context) ModelBool(t *smt.Term) bool {
	l, ok := c.lit[t]
	if !ok {
		panic(fmt.Sprintf("bitblast: term not blasted: %s", t))
	}
	return c.s.ValueLit(l)
}

// ModelBV reads the model value of bitvector term t after a Sat result.
// t must have been blasted before solving.
func (c *Context) ModelBV(t *smt.Term) *big.Int {
	bs, ok := c.bv[t]
	if !ok {
		panic(fmt.Sprintf("bitblast: term not blasted: %s", t))
	}
	v := new(big.Int)
	for i, l := range bs {
		if c.s.ValueLit(l) {
			v.SetBit(v, i, 1)
		}
	}
	return v
}

// ModelValue reads the model value of t (boolean values map to 0/1).
func (c *Context) ModelValue(t *smt.Term) *big.Int {
	if t.Sort().IsBool() {
		if c.ModelBool(t) {
			return big.NewInt(1)
		}
		return big.NewInt(0)
	}
	return c.ModelBV(t)
}
