package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text format. A nil registry
// yields an empty 200 response (the disabled layer exposes nothing).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry as the -metrics-json document.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := r.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if data == nil {
			data = []byte("{}")
		}
		w.Write(data)
	})
}

// NewMux returns the observability endpoint: /metrics (Prometheus text),
// /metrics.json, and the standard net/http/pprof profiling handlers under
// /debug/pprof/ — mounted on a private mux so the shim never exposes
// whatever third-party packages registered on http.DefaultServeMux.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/metrics.json", JSONHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
