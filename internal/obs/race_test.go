package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRaceSoak hammers the metrics hot path from many goroutines — the
// same counters, gauges, histograms and span trees concurrently, with
// expositions rendered mid-flight — so `go test -race ./internal/obs`
// exercises every lock-free path under contention. The final counts are
// asserted exactly: atomic increments must not lose updates.
func TestRaceSoak(t *testing.T) {
	const (
		goroutines = 16
		iters      = 2000
	)
	r := NewRegistry()
	root := StartSpan("soak")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Per-goroutine span child, shared metrics.
			sp := root.StartChild("worker")
			c := r.Counter("soak_events_total")
			ga := r.Gauge("soak_inflight")
			h := r.Histogram("soak_latency_ns", DurationBuckets)
			for i := 0; i < iters; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(int64(i%10) * 1000)
				ga.Add(-1)
				if i%100 == 0 {
					// Lookup path under contention.
					r.Counter("soak_events_total").Add(0)
					sub := sp.StartChild("tick")
					sub.SetMetric("i", int64(i))
					sub.End()
				}
			}
			sp.End()
		}(g)
	}
	// Concurrent scrapes while writers run.
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			if _, err := r.JSON(); err != nil {
				t.Error(err)
				return
			}
			_ = root.RenderString()
		}
	}()
	wg.Wait()
	<-scrapeDone

	if got := r.CounterValue("soak_events_total"); got != goroutines*iters {
		t.Fatalf("lost counter updates: %d, want %d", got, goroutines*iters)
	}
	if got := r.GaugeValue("soak_inflight"); got != 0 {
		t.Fatalf("gauge did not return to zero: %d", got)
	}
	h := r.Histogram("soak_latency_ns", DurationBuckets)
	if got := h.Count(); got != goroutines*iters {
		t.Fatalf("lost histogram samples: %d, want %d", got, goroutines*iters)
	}
	if kids := root.Children(); len(kids) != goroutines {
		t.Fatalf("span children = %d, want %d", len(kids), goroutines)
	}
}
