// Package obs is bf4's unified observability layer: a low-overhead,
// concurrency-safe metrics registry (atomic counters, gauges and
// fixed-bucket histograms) plus hierarchical span tracing (span.go),
// exposed as Prometheus text format and stable JSON (expose.go) and over
// HTTP together with net/http/pprof (http.go).
//
// The layer is strictly passive: it observes the verification pipeline
// and the runtime shim without influencing them, so every verdict,
// annotation and fingerprint is byte-identical with observability on or
// off — CI asserts exactly that.
//
// Disabled observability is the nil value. Every method on a nil
// *Registry, *Counter, *Gauge, *Histogram or *Span is a no-op, so call
// sites instrument unconditionally:
//
//	var reg *obs.Registry // nil: disabled
//	c := reg.Counter("bf4_solver_checks_total")
//	c.Inc() // no-op, no allocation, one nil check
//
// Hot paths retain the metric handle once and pay a single predictable
// branch per event when disabled, and one atomic add when enabled.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is NOT ready to use;
// create with NewRegistry. A nil *Registry is the disabled layer: all
// lookups return nil metrics whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (registering on first use) the counter with the given
// name. Nil receiver: returns nil, whose methods are no-ops. Names should
// follow Prometheus conventions (snake_case, counters end in _total).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the histogram with the
// given name and fixed bucket upper bounds (ascending; an implicit +Inf
// bucket is appended). Bounds are fixed at first registration: a second
// call with different bounds returns the existing histogram unchanged, so
// exposition stays stable for the registry's lifetime.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterValue reads a counter by name; 0 when absent or r is nil.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue reads a gauge by name; 0 when absent or r is nil.
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	return g.Value()
}

// names returns the sorted metric names of each kind (for exposition).
func (r *Registry) names() (counters, gauges, hists []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.hists {
		hists = append(hists, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}

// Counter is a monotonically increasing counter. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can go up and down. Nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores n (no-op on nil).
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (no-op on nil).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bucket boundaries are
// upper bounds (le) in ascending order plus an implicit +Inf bucket.
// Observation is lock-free: one atomic add into the bucket, one into the
// sum, one into the count.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Int64
	count  atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample (no-op on nil).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot returns the bucket bounds and per-bucket (non-cumulative)
// counts, the +Inf bucket last.
func (h *Histogram) snapshot() (bounds []int64, counts []int64) {
	bounds = h.bounds
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return
}

// DurationBuckets are the standard bucket upper bounds (nanoseconds) for
// latency histograms: 1µs to 10s in decades. Fixed boundaries keep the
// exposition golden-testable and dashboards comparable across runs.
var DurationBuckets = []int64{
	1_000,          // 1µs
	10_000,         // 10µs
	100_000,        // 100µs
	1_000_000,      // 1ms
	10_000_000,     // 10ms
	100_000_000,    // 100ms
	1_000_000_000,  // 1s
	10_000_000_000, // 10s
}

// CountBuckets are the standard bucket upper bounds for event-count
// histograms (e.g. conflicts per solver check): decades from 1 to 1e6.
var CountBuckets = []int64{1, 10, 100, 1_000, 10_000, 100_000, 1_000_000}
