package obs

import "strings"

// LabeledName renders a metric name carrying one Prometheus label pair,
// e.g. LabeledName("bf4_fleet_shard_restores_total", "shard", "sw0") →
// `bf4_fleet_shard_restores_total{shard="sw0"}`. The registry treats the
// result as an ordinary metric name; because exposition prints names
// verbatim (and TYPE lines strip the label part, see baseName), the
// Prometheus text output parses as a labeled series. Label values are
// escaped per the exposition format (backslash, quote, newline).
func LabeledName(name, key, value string) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	b.WriteString(key)
	b.WriteString(`="`)
	for _, r := range value {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteString(`"}`)
	return b.String()
}

// baseName strips a label block from a metric name: TYPE lines must name
// the metric family, never an individual labeled series.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}
