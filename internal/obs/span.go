package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Span is one node of a hierarchical phase trace: a named timed region
// with ordered children and optional integer annotations (check counts,
// bug counts, ...). Spans are concurrency-safe: children may be started
// from multiple goroutines (worker pools), and annotations may be set
// while siblings run. A nil *Span is the disabled tracer; every method is
// a no-op and StartChild returns nil, so subtrees switch off together.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	children []*Span
	metrics  []spanMetric
}

type spanMetric struct {
	key string
	val int64
}

// StartSpan begins a new root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild begins a child span under s (nil on a nil receiver).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span's clock. Idempotent; later calls keep the first
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetDuration overrides the span's duration (for phases whose time is
// accumulated externally, e.g. summed recheck time).
func (s *Span) SetDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ended = true
	s.dur = d
	s.mu.Unlock()
}

// Duration returns the span's duration: the recorded one after End, the
// running elapsed time before.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetMetric attaches (or overwrites) an integer annotation rendered next
// to the span, e.g. checks=12.
func (s *Span) SetMetric(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.metrics {
		if s.metrics[i].key == key {
			s.metrics[i].val = v
			return
		}
	}
	s.metrics = append(s.metrics, spanMetric{key, v})
}

// Children returns a snapshot of the span's children in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Render writes the span tree as a human-readable phase breakdown:
//
//	bf4 simple_nat                 41.3ms
//	  compile                      12.1ms
//	    parse                       1.2ms
//	  findbugs                     18.7ms  checks=12 reachable=5
func (s *Span) Render(w io.Writer) {
	if s == nil {
		return
	}
	s.render(w, 0)
}

// RenderString is Render into a string ("" on nil).
func (s *Span) RenderString() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Render(&b)
	return b.String()
}

func (s *Span) render(w io.Writer, depth int) {
	s.mu.Lock()
	name := s.name
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	metrics := append([]spanMetric(nil), s.metrics...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	label := strings.Repeat("  ", depth) + name
	fmt.Fprintf(w, "%-40s %12s", label, dur.Round(time.Microsecond))
	for _, m := range metrics {
		fmt.Fprintf(w, "  %s=%d", m.key, m.val)
	}
	fmt.Fprintln(w)
	for _, c := range children {
		c.render(w, depth+1)
	}
}

// ----------------------------------------------------------- context

type spanKey struct{}

// NewContext returns ctx carrying s as the current span.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the current span in ctx (nil when absent), giving
// call chains a context-carried span stack: each Start pushes a child,
// its returned context carries it, End pops it.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start begins a child of the context's current span and returns a
// context carrying the child. With no span in ctx it returns ctx and nil
// — the disabled path stays allocation-free.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name)
	return NewContext(ctx, c), c
}

// ----------------------------------------------------------- phases

// StartPhase times one pipeline phase against both halves of the layer:
// a child span of parent and a bf4_phase_<name>_ns_total counter in reg.
// The returned span carries any phase annotations; call done() when the
// phase completes. Either half may be nil; with both nil the calls reduce
// to two nil checks and no clock reads.
func StartPhase(reg *Registry, parent *Span, name string) (sp *Span, done func()) {
	if reg == nil && parent == nil {
		return nil, func() {}
	}
	sp = parent.StartChild(name)
	ctr := reg.Counter("bf4_phase_" + name + "_ns_total")
	start := time.Now()
	return sp, func() {
		sp.End()
		ctr.Add(time.Since(start).Nanoseconds())
	}
}
