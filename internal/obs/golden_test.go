package obs

import (
	"strings"
	"testing"
)

// goldenRegistry builds a registry with a deterministic metric state:
// every golden below pins the exact exposition of this state.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("bf4_solver_checks_total").Add(3)
	r.Counter("bf4_shim_updates_validated_total").Add(12)
	r.Gauge("bf4_solver_cnf_vars").Set(240)
	h := r.Histogram("bf4_solver_check_conflicts", CountBuckets)
	for _, v := range []int64{0, 5, 50, 5_000, 5_000_000} {
		h.Observe(v)
	}
	return r
}

// TestPrometheusGolden pins the exact Prometheus text exposition: metric
// order (counters, gauges, histograms; each sorted by name), the fixed
// bucket boundaries, and cumulative bucket semantics. Any drift breaks
// scrapers and dashboards, so the full output is compared byte for byte.
func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE bf4_shim_updates_validated_total counter
bf4_shim_updates_validated_total 12
# TYPE bf4_solver_checks_total counter
bf4_solver_checks_total 3
# TYPE bf4_solver_cnf_vars gauge
bf4_solver_cnf_vars 240
# TYPE bf4_solver_check_conflicts histogram
bf4_solver_check_conflicts_bucket{le="1"} 1
bf4_solver_check_conflicts_bucket{le="10"} 2
bf4_solver_check_conflicts_bucket{le="100"} 3
bf4_solver_check_conflicts_bucket{le="1000"} 3
bf4_solver_check_conflicts_bucket{le="10000"} 4
bf4_solver_check_conflicts_bucket{le="100000"} 4
bf4_solver_check_conflicts_bucket{le="1000000"} 4
bf4_solver_check_conflicts_bucket{le="+Inf"} 5
bf4_solver_check_conflicts_sum 5005055
bf4_solver_check_conflicts_count 5
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus exposition drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestJSONGolden pins the -metrics-json document: stable key ordering
// (encoding/json sorts map keys), fixed bucket boundaries, cumulative
// bucket counts.
func TestJSONGolden(t *testing.T) {
	data, err := goldenRegistry().JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "counters": {
    "bf4_shim_updates_validated_total": 12,
    "bf4_solver_checks_total": 3
  },
  "gauges": {
    "bf4_solver_cnf_vars": 240
  },
  "histograms": {
    "bf4_solver_check_conflicts": {
      "count": 5,
      "sum": 5005055,
      "buckets": [
        {
          "le": "1",
          "count": 1
        },
        {
          "le": "10",
          "count": 2
        },
        {
          "le": "100",
          "count": 3
        },
        {
          "le": "1000",
          "count": 3
        },
        {
          "le": "10000",
          "count": 4
        },
        {
          "le": "100000",
          "count": 4
        },
        {
          "le": "1000000",
          "count": 4
        },
        {
          "le": "+Inf",
          "count": 5
        }
      ]
    }
  }
}`
	if got := string(data); got != want {
		t.Fatalf("json exposition drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestDisabledEmitsNothing guards the disabled path: a nil registry must
// produce zero exposition bytes on every surface.
func TestDisabledEmitsNothing(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %d prometheus bytes: %q", b.Len(), b.String())
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Fatalf("nil registry wrote JSON: %q", data)
	}
}

// TestEmptyRegistryStable pins the empty-but-enabled exposition.
func TestEmptyRegistryStable(t *testing.T) {
	r := NewRegistry()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry wrote %q", b.String())
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "counters": {},
  "gauges": {},
  "histograms": {}
}`
	if string(data) != want {
		t.Fatalf("empty JSON = %q, want %q", data, want)
	}
}

// TestHistogramBoundsFixedAtRegistration: a second Histogram call with
// different bounds must not change the exposition.
func TestHistogramBoundsFixedAtRegistration(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", []int64{1, 2})
	h2 := r.Histogram("h", []int64{100, 200, 300})
	if h1 != h2 {
		t.Fatal("re-registration created a new histogram")
	}
	bounds, _ := h1.snapshot()
	if len(bounds) != 2 || bounds[0] != 1 || bounds[1] != 2 {
		t.Fatalf("bounds changed on re-registration: %v", bounds)
	}
}
