package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name within each kind —
// counters, then gauges, then histograms — so the output is stable for a
// fixed metric state. A nil registry writes nothing: the disabled layer
// has no exposition at all.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters, gauges, hists := r.names()
	// Counters and gauges may carry a label block (see LabeledName); all
	// series of one family share a single TYPE line naming the family.
	if err := writeScalarFamilies(w, counters, "counter", r.CounterValue); err != nil {
		return err
	}
	if err := writeScalarFamilies(w, gauges, "gauge", r.GaugeValue); err != nil {
		return err
	}
	for _, name := range hists {
		r.mu.Lock()
		h := r.hists[name]
		r.mu.Unlock()
		bounds, counts := h.snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// writeScalarFamilies renders counters or gauges grouped by metric
// family: one TYPE line per base name, every series (labeled or not) of
// that family directly beneath it, families in first-appearance order of
// the sorted name list.
func writeScalarFamilies(w io.Writer, names []string, kind string, value func(string) int64) error {
	byBase := map[string][]string{}
	var order []string
	for _, name := range names {
		base := baseName(name)
		if _, ok := byBase[base]; !ok {
			order = append(order, base)
		}
		byBase[base] = append(byBase[base], name)
	}
	for _, base := range order {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind); err != nil {
			return err
		}
		for _, name := range byBase[base] {
			if _, err := fmt.Fprintf(w, "%s %d\n", name, value(name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// HistogramJSON is the JSON shape of one histogram.
type HistogramJSON struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []BucketJSON `json:"buckets"`
}

// BucketJSON is one cumulative histogram bucket; Le is the upper bound as
// a decimal string, "+Inf" for the last bucket.
type BucketJSON struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// metricsJSON is the -metrics-json document shape.
type metricsJSON struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]HistogramJSON `json:"histograms"`
}

// JSON renders the registry as an indented JSON document with stable key
// ordering (encoding/json sorts map keys) and fixed bucket boundaries. A
// nil registry returns nil bytes: the disabled layer emits nothing.
func (r *Registry) JSON() ([]byte, error) {
	if r == nil {
		return nil, nil
	}
	counters, gauges, hists := r.names()
	doc := metricsJSON{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramJSON{},
	}
	for _, name := range counters {
		doc.Counters[name] = r.CounterValue(name)
	}
	for _, name := range gauges {
		doc.Gauges[name] = r.GaugeValue(name)
	}
	for _, name := range hists {
		r.mu.Lock()
		h := r.hists[name]
		r.mu.Unlock()
		bounds, counts := h.snapshot()
		hj := HistogramJSON{Count: h.Count(), Sum: h.Sum()}
		cum := int64(0)
		for i, b := range bounds {
			cum += counts[i]
			hj.Buckets = append(hj.Buckets, BucketJSON{Le: strconv.FormatInt(b, 10), Count: cum})
		}
		cum += counts[len(counts)-1]
		hj.Buckets = append(hj.Buckets, BucketJSON{Le: "+Inf", Count: cum})
		doc.Histograms[name] = hj
	}
	return json.MarshalIndent(doc, "", "  ")
}
