package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.CounterValue("c_total"); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	// Same name returns the same counter.
	if r.Counter("c_total") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram("h", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 1022 {
		t.Fatalf("hist sum = %d, want 1022", h.Sum())
	}
	bounds, counts := h.snapshot()
	if len(bounds) != 2 || len(counts) != 3 {
		t.Fatalf("snapshot shape: %v %v", bounds, counts)
	}
	// le=10 gets {1,10}, le=100 gets {11}, +Inf gets {1000}.
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("bucket counts = %v, want [2 1 1]", counts)
	}
}

// TestNilRegistryIsNoOp pins the disabled-layer contract: every operation
// on nil receivers is safe and free of observable effects.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	if c != nil {
		t.Fatal("nil registry returned a live counter")
	}
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("g")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := r.Histogram("h", CountBuckets)
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded a sample")
	}
	if r.CounterValue("x_total") != 0 || r.GaugeValue("g") != 0 {
		t.Fatal("nil registry reads nonzero")
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("run")
	a := root.StartChild("compile")
	aa := a.StartChild("parse")
	aa.End()
	a.End()
	b := root.StartChild("findbugs")
	b.SetMetric("checks", 12)
	b.SetMetric("checks", 13) // overwrite
	b.SetMetric("reachable", 5)
	b.End()
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "compile" || kids[1].Name() != "findbugs" {
		t.Fatalf("children = %v", kids)
	}
	out := root.RenderString()
	for _, want := range []string{"run", "  compile", "    parse", "  findbugs", "checks=13", "reachable=5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "checks=12") {
		t.Fatalf("SetMetric did not overwrite:\n%s", out)
	}
	if root.Duration() <= 0 {
		t.Fatal("root duration not recorded")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	s := StartSpan("x")
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Fatal("second End changed the duration")
	}
	s.SetDuration(42 * time.Millisecond)
	if s.Duration() != 42*time.Millisecond {
		t.Fatal("SetDuration did not override")
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	c := s.StartChild("x")
	if c != nil {
		t.Fatal("nil span produced a live child")
	}
	c.End()
	c.SetMetric("k", 1)
	if c.RenderString() != "" {
		t.Fatal("nil span renders output")
	}
	if c.Duration() != 0 || c.Name() != "" || c.Children() != nil {
		t.Fatal("nil span has state")
	}
}

func TestContextSpanStack(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context carries a span")
	}
	// Disabled path: no span in context, Start returns nil.
	ctx2, sp := Start(ctx, "phase")
	if sp != nil || ctx2 != ctx {
		t.Fatal("Start without a parent span should be a no-op")
	}

	root := StartSpan("root")
	ctx = NewContext(ctx, root)
	ctx, child := Start(ctx, "child")
	if child == nil || FromContext(ctx) != child {
		t.Fatal("Start did not push the child span")
	}
	_, grand := Start(ctx, "grandchild")
	grand.End()
	child.End()
	root.End()
	if kids := root.Children(); len(kids) != 1 || kids[0] != child {
		t.Fatalf("root children = %v", kids)
	}
	if kids := child.Children(); len(kids) != 1 || kids[0].Name() != "grandchild" {
		t.Fatalf("child children = %v", kids)
	}
}

func TestStartPhase(t *testing.T) {
	reg := NewRegistry()
	root := StartSpan("root")
	sp, done := StartPhase(reg, root, "parse")
	if sp == nil {
		t.Fatal("phase span missing")
	}
	sp.SetMetric("nodes", 7)
	done()
	if got := reg.CounterValue("bf4_phase_parse_ns_total"); got <= 0 {
		t.Fatalf("phase counter = %d, want > 0", got)
	}
	if kids := root.Children(); len(kids) != 1 || kids[0].Name() != "parse" {
		t.Fatalf("phase span not attached: %v", kids)
	}

	// Fully disabled: no span, no counter, no panic.
	sp2, done2 := StartPhase(nil, nil, "x")
	if sp2 != nil {
		t.Fatal("disabled phase returned a span")
	}
	done2()

	// Half-enabled: counter only.
	sp3, done3 := StartPhase(reg, nil, "lower")
	if sp3 != nil {
		t.Fatal("span should be nil without a parent")
	}
	done3()
	if reg.CounterValue("bf4_phase_lower_ns_total") <= 0 {
		t.Fatal("counter-only phase did not record")
	}
}
