package cost

import (
	"testing"

	"bf4/internal/ir"
	"bf4/internal/p4/parser"
	"bf4/internal/p4/types"
)

const twoTableSrc = `
header h_t { bit<8> x; }
struct headers { h_t h; }
struct metadata { bit<8> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w1: parse_h;
            default: accept;
        }
    }
    state parse_h { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action a1() { meta.m = 8w1; }
    action a2() { hdr.h.x = hdr.h.x + 8w1; smeta.egress_spec = 9w1; }
    table t1 {
        key = { smeta.ingress_port: exact; }
        actions = { a1; NoAction; }
    }
    table t2 {
        key = { meta.m: exact; }
        actions = { a2; NoAction; }
    }
    apply {
        t1.apply();
        t2.apply();
    }
}
V1Switch(P(), Ing()) main;
`

func build(t *testing.T, src string, opts ir.Options) *ir.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Build(prog, info, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOriginalStagesCountTables(t *testing.T) {
	p := build(t, twoTableSrc, ir.DefaultOptions())
	s := Estimate(p)
	if s.Original != 2 {
		t.Fatalf("Original = %d, want 2 (two chained tables)", s.Original)
	}
	if s.WithKeys != s.Original {
		t.Fatalf("key fixes must not add stages: %d vs %d", s.WithKeys, s.Original)
	}
}

func TestGuardsIncreaseStages(t *testing.T) {
	p := build(t, twoTableSrc, ir.DefaultOptions())
	s := Estimate(p)
	// a2 touches hdr.h (conditionally valid) and there is an egress-spec
	// check, so guard lowering needs strictly more stages.
	if s.WithGuards <= s.Original {
		t.Fatalf("guards = %d, original = %d; guard instrumentation must cost stages",
			s.WithGuards, s.Original)
	}
}

func TestSynthesizedKeyBits(t *testing.T) {
	opts := ir.DefaultOptions()
	opts.ExtraKeys = map[string][]string{"t2": {"hdr.h.isValid()"}}
	p := build(t, twoTableSrc, opts)
	s := Estimate(p)
	if s.ExtraMatchBits != 1 {
		t.Fatalf("ExtraMatchBits = %d, want 1 (one validity bit)", s.ExtraMatchBits)
	}
	if s.TotalKeyBits < s.ExtraMatchBits {
		t.Fatalf("TotalKeyBits = %d < extra", s.TotalKeyBits)
	}
}

func TestNoChecksNoGuardCost(t *testing.T) {
	opts := ir.DefaultOptions()
	opts.CheckHeaderValidity = false
	opts.CheckEgressSpec = false
	opts.CheckRegisterBounds = false
	p := build(t, twoTableSrc, opts)
	s := Estimate(p)
	if s.WithGuards != s.Original {
		t.Fatalf("without instrumentation, guards=%d must equal original=%d",
			s.WithGuards, s.Original)
	}
}
