// Package cost models hardware pipeline stage usage (paper §3): on
// match-action targets every table occupies a stage, and control-flow
// added by inline guard instrumentation ("if (!valid) bug()") costs
// additional stages. bf4's motivating claim is that instrumenting the
// simple NAT with inline guards doubles its stage count (making large
// programs undeployable), while bf4's fix — adding table keys — costs
// zero extra stages, only wider match words.
package cost

import (
	"bf4/internal/ir"
)

// Stages estimates stage usage for deployment variants.
type Stages struct {
	// Original is the longest table chain of the unmodified program.
	Original int
	// WithGuards is the stage count if every instrumented check became a
	// dataplane guard (the rejected alternative of §3).
	WithGuards int
	// WithKeys is the stage count after bf4's key-addition fix: identical
	// to Original, since keys only widen match words.
	WithKeys int
	// ExtraMatchBits is the total key width added by fixes (the paper's
	// "<1 bit per rule on average" metric input).
	ExtraMatchBits int
	// TotalKeyBits is the total match width across all tables.
	TotalKeyBits int
}

// Estimate computes the stage model over a lowered program. Longest paths
// are computed over the acyclic CFG; tables weigh one stage, and in the
// guarded variant each bug-check branch weighs one more.
func Estimate(p *ir.Program) Stages {
	var s Stages
	s.Original = longestPath(p, func(n *ir.Node) int {
		if n.Kind == ir.AssertPoint {
			return 1
		}
		return 0
	})
	s.WithGuards = longestPath(p, func(n *ir.Node) int {
		switch {
		case n.Kind == ir.AssertPoint:
			return 1
		case n.Kind == ir.Branch && isBugCheck(n):
			return 1
		}
		return 0
	})
	s.WithKeys = s.Original
	for _, t := range p.Tables {
		for _, k := range t.Keys {
			s.TotalKeyBits += k.Width
			if k.Synthesized {
				s.ExtraMatchBits += k.Width
			}
		}
	}
	return s
}

// isBugCheck recognizes instrumentation branches (true side terminates in
// a bug node, possibly through a nop).
func isBugCheck(n *ir.Node) bool {
	if len(n.Succs) != 2 {
		return false
	}
	t := n.Succs[0]
	for i := 0; i < 3 && t != nil; i++ {
		if t.Kind == ir.BugTerm {
			return true
		}
		if t.Kind != ir.Nop || len(t.Succs) != 1 {
			return false
		}
		t = t.Succs[0]
	}
	return false
}

// longestPath computes the maximum node-weight sum over root-to-leaf
// paths of the acyclic CFG.
func longestPath(p *ir.Program, weight func(*ir.Node) int) int {
	topo := p.Topo()
	dist := make(map[*ir.Node]int, len(topo))
	best := 0
	for _, n := range topo {
		d := dist[n] + weight(n)
		if d > best {
			best = d
		}
		for _, succ := range n.Succs {
			if d > dist[succ] {
				dist[succ] = d
			}
		}
	}
	return best
}
