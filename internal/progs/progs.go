// Package progs is the benchmark corpus: P4 programs mirroring the rows
// of the paper's Table 1. Each program is written in bf4's P4-16 subset
// to exhibit the same bug structure as its namesake from the paper's
// 94-program evaluation set (the relevant structural properties are which
// tables match on header validity, which actions touch unvalidated
// headers or register indices, and whether forwarding is always decided).
// The switch program — the paper's production-grade 6 KLOC datacenter
// router — is generated deterministically by GenerateSwitch.
package progs

import "sort"

// Program is one corpus entry.
type Program struct {
	Name string
	// Source is the P4 source text.
	Source string
	// Description summarizes what the program does and which bug classes
	// it exhibits.
	Description string
	// Expect describes the qualitative Table 1 shape used by the
	// integration tests: the reproduction asserts these relations rather
	// than the paper's absolute counts.
	Expect Expectation
}

// Expectation captures the qualitative row shape.
type Expectation struct {
	// MinBugs is a lower bound on initially reachable bugs.
	MinBugs int
	// InferControlsAll means annotation inference alone removes every
	// bug (arp, resubmit in the paper).
	InferControlsAll bool
	// NeedsKeys means the Fixes algorithm must propose at least one key.
	NeedsKeys bool
	// DataplaneBugs is the number of bugs remaining after fixes
	// (mplb_router and linearroad keep 1 in the paper).
	DataplaneBugs int
	// EgressSpecBug means the program exhibits the egress-spec-not-set
	// class (most V1 programs, per §5.1).
	EgressSpecBug bool
}

var registry []*Program

func register(p *Program) { registry = append(registry, p) }

// All returns the corpus sorted by name, with switch generated at its
// default scale.
func All() []*Program {
	out := append([]*Program(nil), registry...)
	out = append(out, SwitchProgram())
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns a program by name (nil if absent).
func Get(name string) *Program {
	for _, p := range All() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Names lists the corpus program names.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	return out
}
