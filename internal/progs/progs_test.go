package progs

import (
	"strings"
	"testing"

	"bf4/internal/driver"
	"bf4/internal/ir"
	"bf4/internal/p4/parser"
	"bf4/internal/p4/types"
)

func TestCorpusCompiles(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := parser.Parse(p.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			info, err := types.Check(prog)
			if err != nil {
				t.Fatalf("typecheck: %v", err)
			}
			if _, err := ir.Build(prog, info, ir.DefaultOptions()); err != nil {
				t.Fatalf("lower: %v", err)
			}
		})
	}
}

func TestCorpusNamesComplete(t *testing.T) {
	want := []string{
		// Table 1 rows.
		"07-MultiProtocol", "arp", "basic_routing", "ecmp_2",
		"firewall_stateful", "flowlet", "flowlet_switching",
		"hash_action_gw2", "heavy_hitter_1", "heavy_hitter_2", "hula",
		"int_telemetry", "issue894", "linearroad_16", "mc_nat_16",
		"mplb_router-ppc", "ndp_router_16", "netchain", "netchain_16",
		"netpaxos_accept_16", "qos_meter", "resubmit", "simple_nat",
		"switch", "ts_switching_16",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("corpus has %d programs, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("program %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

// TestCorpusShapes runs the full bf4 loop on every non-switch program and
// asserts the qualitative Table 1 row shape.
func TestCorpusShapes(t *testing.T) {
	for _, p := range All() {
		if p.Name == "switch" {
			continue // covered by TestSwitchShape
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res, err := driver.Run(p.Name, p.Source, driver.DefaultConfig())
			if err != nil {
				t.Fatalf("driver: %v", err)
			}
			t.Log(res.Summary())
			e := p.Expect
			if res.Bugs < e.MinBugs {
				t.Errorf("bugs = %d, want >= %d", res.Bugs, e.MinBugs)
			}
			if e.InferControlsAll {
				if res.BugsAfterInfer != 0 {
					for _, b := range res.InferResult.Uncontrolled {
						t.Logf("uncontrolled: %s", b.Description())
					}
					t.Errorf("bugs after Infer = %d, want 0", res.BugsAfterInfer)
				}
				if res.KeysAdded != 0 {
					t.Errorf("keys added = %d, want 0", res.KeysAdded)
				}
			}
			if e.NeedsKeys && res.KeysAdded == 0 {
				t.Errorf("expected key fixes, got none")
			}
			if res.BugsAfterFixes != e.DataplaneBugs {
				for _, b := range res.Dataplane {
					t.Logf("after fixes: %s", b.Description())
				}
				t.Errorf("bugs after fixes = %d, want %d", res.BugsAfterFixes, e.DataplaneBugs)
			}
			if e.EgressSpecBug {
				found := false
				for _, b := range res.InitialRep.Bugs {
					if b.Reachable && b.Kind == ir.BugEgressSpecNotSet {
						found = true
					}
				}
				if !found {
					t.Errorf("expected an egress-spec bug")
				}
			}
		})
	}
}

func TestGenerateSwitchDeterministic(t *testing.T) {
	a := GenerateSwitch(4)
	b := GenerateSwitch(4)
	if a != b {
		t.Fatal("switch generation is not deterministic")
	}
	if GenerateSwitch(8) == a {
		t.Fatal("scale has no effect")
	}
}

func TestGenerateSwitchScalesLoC(t *testing.T) {
	small := len(strings.Split(GenerateSwitch(2), "\n"))
	big := len(strings.Split(GenerateSwitch(DefaultSwitchScale), "\n"))
	if big <= small {
		t.Fatalf("LoC did not grow with scale: %d vs %d", small, big)
	}
	if big < 800 {
		t.Fatalf("default switch is only %d lines; expected production scale", big)
	}
}

// TestSwitchShape verifies the paper's headline result on a moderate
// switch scale: many bugs, a large fraction controlled by Infer, the
// rest eliminated by key fixes across multiple tables.
func TestSwitchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: full bf4 loop on switch@4")
	}
	src := GenerateSwitch(4)
	res, err := driver.Run("switch@4", src, driver.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Summary())
	if res.Bugs < 10 {
		t.Fatalf("switch@4 found only %d bugs", res.Bugs)
	}
	if res.BugsAfterInfer >= res.Bugs {
		t.Fatalf("Infer controlled nothing: %d -> %d", res.Bugs, res.BugsAfterInfer)
	}
	if res.KeysAdded == 0 || res.TablesTouched < 2 {
		t.Fatalf("fixes: keys=%d tables=%d", res.KeysAdded, res.TablesTouched)
	}
	if res.BugsAfterFixes != 0 {
		for _, b := range res.Dataplane {
			t.Logf("after fixes: %s", b.Description())
		}
		t.Fatalf("bugs after fixes = %d, want 0", res.BugsAfterFixes)
	}
}
