package progs

func init() {
	register(arp)
	register(resubmit)
	register(ecmp2)
	register(mcNat16)
	register(netpaxosAccept16)
	register(hashActionGw2)
}

// arp: an ARP responder. Every table that touches the arp header also
// matches on its validity, so annotation inference alone controls all
// bugs (Table 1: 6 → 0 after Infer).
var arp = &Program{
	Name: "arp",
	Description: "ARP responder; all header-touching tables match on " +
		"validity, so Infer controls every bug without code changes",
	Expect: Expectation{MinBugs: 2, InferControlsAll: true},
	Source: `
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header arp_t {
    bit<16> htype;
    bit<16> ptype;
    bit<8>  hlen;
    bit<8>  plen;
    bit<16> oper;
    bit<48> senderHA;
    bit<32> senderPA;
    bit<48> targetHA;
    bit<32> targetPA;
}

struct metadata {
    bit<1> is_request;
}

struct headers {
    ethernet_t ethernet;
    arp_t      arp;
}

parser ArpParser(packet_in pkt, out headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x806: parse_arp;
            default: accept;
        }
    }
    state parse_arp {
        pkt.extract(hdr.arp);
        transition accept;
    }
}

control ArpIngress(inout headers hdr, inout metadata meta,
                   inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action arp_reply(bit<48> myMac, bit<32> myIp) {
        hdr.arp.oper = 16w2;
        hdr.arp.targetHA = hdr.arp.senderHA;
        hdr.arp.targetPA = hdr.arp.senderPA;
        hdr.arp.senderHA = myMac;
        hdr.arp.senderPA = myIp;
        hdr.ethernet.dstAddr = hdr.ethernet.srcAddr;
        hdr.ethernet.srcAddr = myMac;
        smeta.egress_spec = smeta.ingress_port;
    }
    action forward(bit<9> port) {
        smeta.egress_spec = port;
    }
    table arp_table {
        key = {
            hdr.arp.isValid(): exact;
            hdr.arp.oper: ternary;
            hdr.arp.targetPA: ternary;
        }
        actions = { arp_reply; forward; drop_; }
        default_action = drop_();
    }
    table l2_fwd {
        key = {
            hdr.ethernet.isValid(): exact;
            hdr.ethernet.dstAddr: ternary;
        }
        actions = { forward; drop_; }
        default_action = drop_();
    }
    apply {
        arp_table.apply();
        l2_fwd.apply();
    }
}

control ArpEgress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    apply { }
}

control ArpDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.arp);
    }
}

V1Switch(ArpParser(), ArpIngress(), ArpEgress(), ArpDeparser()) main;
`,
}

// resubmit: the v1model resubmit example; metadata-only matching and an
// unconditional forwarding decision make all bugs controllable
// (Table 1: 2 → 0 after Infer).
var resubmit = &Program{
	Name: "resubmit",
	Description: "resubmit example; validity-matched table plus explicit " +
		"drop default — Infer controls everything",
	Expect: Expectation{MinBugs: 1, InferControlsAll: true},
	Source: `
header mpls_t {
    bit<20> label;
    bit<3>  tc;
    bit<1>  bos;
    bit<8>  ttl;
}

struct metadata {
    bit<8> resubmit_count;
}

struct headers {
    mpls_t mpls;
}

parser RsParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: parse_mpls;
            default: accept;
        }
    }
    state parse_mpls {
        pkt.extract(hdr.mpls);
        transition accept;
    }
}

control RsIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action do_resubmit() {
        resubmit(meta);
        meta.resubmit_count = meta.resubmit_count + 8w1;
        mark_to_drop(smeta);
    }
    action pop_and_forward(bit<9> port) {
        hdr.mpls.ttl = hdr.mpls.ttl - 8w1;
        smeta.egress_spec = port;
    }
    table t_resubmit {
        key = {
            hdr.mpls.isValid(): exact;
            meta.resubmit_count: ternary;
        }
        actions = { do_resubmit; pop_and_forward; drop_; }
        default_action = drop_();
    }
    apply {
        t_resubmit.apply();
    }
}

control RsEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control RsDeparser(packet_out pkt, in headers hdr) {
    apply { pkt.emit(hdr.mpls); }
}

V1Switch(RsParser(), RsIngress(), RsEgress(), RsDeparser()) main;
`,
}

// ecmp_2: ECMP group selection. The nhop table dereferences the ipv4
// header without a validity key — one key fix needed (Table 1: 2/2/0,
// 1 key).
var ecmp2 = &Program{
	Name: "ecmp_2",
	Description: "two-stage ECMP; hash-selected nhop table lacks a " +
		"validity key and needs one fix",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true, EgressSpecBug: true},
	Source: `
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<8>  versionIhl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct metadata {
    bit<16> ecmp_select;
}

struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}

parser EcmpParser(packet_in pkt, out headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control EcmpIngress(inout headers hdr, inout metadata meta,
                    inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action set_ecmp_select(bit<16> base) {
        hash(meta.ecmp_select);
        meta.ecmp_select = meta.ecmp_select + base;
    }
    table ecmp_group {
        key = {
            hdr.ipv4.isValid(): exact;
            hdr.ipv4.dstAddr: lpm;
        }
        actions = { set_ecmp_select; drop_; }
        default_action = drop_();
    }
    action set_nhop(bit<48> dmac, bit<9> port) {
        hdr.ethernet.dstAddr = dmac;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
        smeta.egress_spec = port;
    }
    table ecmp_nhop {
        key = { meta.ecmp_select: exact; }
        actions = { set_nhop; NoAction; }
    }
    apply {
        ecmp_group.apply();
        ecmp_nhop.apply();
    }
}

control EcmpEgress(inout headers hdr, inout metadata meta,
                   inout standard_metadata_t smeta) {
    apply { }
}

control EcmpDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(EcmpParser(), EcmpIngress(), EcmpEgress(), EcmpDeparser()) main;
`,
}

// mc_nat_16: multicast NAT. One of two bugs is controllable with the
// existing validity key, the other needs the nat table's rewrite action
// key (Table 1: 2/1/0, 1 key).
var mcNat16 = &Program{
	Name: "mc_nat_16",
	Description: "multicast NAT; rewrite table needs a validity key, " +
		"group table is already controllable",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true},
	Source: `
header ipv4_t {
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct metadata {
    bit<16> mcast_grp;
}

struct headers {
    ipv4_t ipv4;
}

parser McParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: accept;
            default: parse_ipv4;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control McIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action set_mcast(bit<16> grp) {
        smeta.mcast_grp = grp;
        smeta.egress_spec = 9w100;
    }
    table mcast_group {
        key = {
            hdr.ipv4.isValid(): exact;
            hdr.ipv4.dstAddr: ternary;
        }
        actions = { set_mcast; drop_; }
        default_action = drop_();
    }
    action rewrite_src(bit<32> newSrc) {
        hdr.ipv4.srcAddr = newSrc;
    }
    table nat_rewrite {
        key = { smeta.mcast_grp: exact; }
        actions = { rewrite_src; NoAction; }
    }
    apply {
        mcast_group.apply();
        nat_rewrite.apply();
    }
}

control McEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control McDeparser(packet_out pkt, in headers hdr) {
    apply { pkt.emit(hdr.ipv4); }
}

V1Switch(McParser(), McIngress(), McEgress(), McDeparser()) main;
`,
}

// netpaxos_acceptor_16: the Paxos acceptor. A register indexed by a
// header field needs the field as a key (Table 1: 2/2/0, 1 key).
var netpaxosAccept16 = &Program{
	Name: "netpaxos_accept_16",
	Description: "Paxos acceptor; register indexed by the paxos instance " +
		"field overflows without a bounding key",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true},
	Source: `
header paxos_t {
    bit<32> inst;
    bit<16> rnd;
    bit<16> vrnd;
    bit<32> value;
    bit<16> msgtype;
}

struct metadata {
    bit<1> proc;
}

struct headers {
    paxos_t paxos;
}

parser PxParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: parse_paxos;
            default: accept;
        }
    }
    state parse_paxos {
        pkt.extract(hdr.paxos);
        transition accept;
    }
}

control PxIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<16>>(4096) rounds;
    register<bit<32>>(4096) values;
    action drop_() {
        mark_to_drop(smeta);
    }
    action handle_1a(bit<9> learner) {
        rounds.write((bit<32>)hdr.paxos.inst, hdr.paxos.rnd);
        smeta.egress_spec = learner;
    }
    action handle_2a(bit<9> learner) {
        rounds.write((bit<32>)hdr.paxos.inst, hdr.paxos.rnd);
        values.write((bit<32>)hdr.paxos.inst, hdr.paxos.value);
        smeta.egress_spec = learner;
    }
    table acceptor {
        key = {
            hdr.paxos.isValid(): exact;
            hdr.paxos.msgtype: exact;
        }
        actions = { handle_1a; handle_2a; drop_; }
        default_action = drop_();
    }
    apply {
        acceptor.apply();
    }
}

control PxEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control PxDeparser(packet_out pkt, in headers hdr) {
    apply { pkt.emit(hdr.paxos); }
}

V1Switch(PxParser(), PxIngress(), PxEgress(), PxDeparser()) main;
`,
}

// hash_action_gw2: a gateway computing a hash index into a counter
// register; the count table needs a validity key (Table 1: 2/2/0, 1 key).
var hashActionGw2 = &Program{
	Name: "hash_action_gw2",
	Description: "hash-action gateway; counter table dereferences the " +
		"ipv4 header without a validity key",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true},
	Source: `
header ipv4_t {
    bit<8>  ttl;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct metadata {
    bit<8> bucket;
}

struct headers {
    ipv4_t ipv4;
}

parser GwParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control GwIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<32>>(256) counters;
    action drop_() {
        mark_to_drop(smeta);
    }
    action count_flow(bit<8> base) {
        hash(meta.bucket);
        counters.write((bit<32>)(meta.bucket + base), (bit<32>)hdr.ipv4.ttl);
    }
    action forward(bit<9> port) {
        smeta.egress_spec = port;
    }
    table gw_count {
        key = { hdr.ipv4.dstAddr: ternary; }
        actions = { count_flow; NoAction; }
    }
    table gw_fwd {
        key = { smeta.ingress_port: exact; }
        actions = { forward; drop_; }
        default_action = drop_();
    }
    apply {
        gw_count.apply();
        gw_fwd.apply();
    }
}

control GwEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control GwDeparser(packet_out pkt, in headers hdr) {
    apply { pkt.emit(hdr.ipv4); }
}

V1Switch(GwParser(), GwIngress(), GwEgress(), GwDeparser()) main;
`,
}
