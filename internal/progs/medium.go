package progs

func init() {
	register(flowlet)
	register(flowletSwitching)
	register(heavyHitter1)
	register(heavyHitter2)
	register(hula)
	register(issue894)
	register(tsSwitching16)
	register(ndpRouter16)
}

// flowlet: flowlet switching with a timestamp register; the nhop table
// needs a validity key for its ipv4 rewrite (Table 1: 2/2/0, 2 keys).
var flowlet = &Program{
	Name: "flowlet",
	Description: "flowlet load balancing; flowlet-id register plus an " +
		"nhop table missing validity keys",
	Expect: Expectation{MinBugs: 2, NeedsKeys: true},
	Source: `
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct metadata {
    bit<16> flowlet_id;
    bit<16> flowlet_map_index;
}

struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}

parser FlParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control FlIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<16>>(65536) flowlet_state;
    action drop_() {
        mark_to_drop(smeta);
    }
    action lookup_flowlet_map() {
        hash(meta.flowlet_map_index);
        flowlet_state.read(meta.flowlet_id, (bit<32>)meta.flowlet_map_index);
    }
    table flowlet_map {
        key = {
            hdr.ipv4.isValid(): exact;
            hdr.ipv4.protocol: ternary;
        }
        actions = { lookup_flowlet_map; NoAction; }
    }
    action set_nhop(bit<48> dmac, bit<9> port) {
        hdr.ethernet.dstAddr = dmac;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
        smeta.egress_spec = port;
    }
    table flowlet_nhop {
        key = { meta.flowlet_id: exact; }
        actions = { set_nhop; drop_; }
        default_action = drop_();
    }
    apply {
        flowlet_map.apply();
        flowlet_nhop.apply();
    }
}

control FlEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control FlDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(FlParser(), FlIngress(), FlEgress(), FlDeparser()) main;
`,
}

// flowlet_switching: variant with an explicit flowlet timeout update
// writing through a header-derived register index.
var flowletSwitching = &Program{
	Name: "flowlet_switching",
	Description: "flowlet switching with timeout register indexed by a " +
		"header hash; needs validity keys",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true},
	Source: `
header ipv4_t {
    bit<8>  ttl;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header tcp_t {
    bit<16> srcPort;
    bit<16> dstPort;
}

struct metadata {
    bit<13> flow_index;
}

struct headers {
    ipv4_t ipv4;
    tcp_t  tcp;
}

parser FsParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.dstAddr) {
            32w0: accept;
            default: parse_tcp;
        }
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        transition accept;
    }
}

control FsIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<48>>(8192) last_seen;
    action drop_() {
        mark_to_drop(smeta);
    }
    action update_flowlet() {
        hash(meta.flow_index);
        last_seen.write((bit<32>)meta.flow_index, smeta.ingress_global_timestamp);
    }
    action route(bit<9> port) {
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
        smeta.egress_spec = port;
    }
    table flowlet_update {
        key = {
            hdr.tcp.isValid(): exact;
            hdr.tcp.srcPort: ternary;
        }
        actions = { update_flowlet; NoAction; }
    }
    table routing {
        key = { meta.flow_index: exact; }
        actions = { route; drop_; }
        default_action = drop_();
    }
    apply {
        flowlet_update.apply();
        routing.apply();
    }
}

control FsEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control FsDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.tcp);
    }
}

V1Switch(FsParser(), FsIngress(), FsEgress(), FsDeparser()) main;
`,
}

// heavy_hitter_1: count-min-sketch heavy hitter detection; register
// indices come from hashes (safe) but the threshold check reads the ipv4
// header in a table lacking a validity key (Table 1: 5/4/0, 2 keys).
var heavyHitter1 = &Program{
	Name: "heavy_hitter_1",
	Description: "count-min sketch heavy hitter; mixed controllable and " +
		"fixable bugs",
	Expect: Expectation{MinBugs: 2, NeedsKeys: true},
	Source: `
header ipv4_t {
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct metadata {
    bit<16> idx1;
    bit<16> idx2;
    bit<32> count1;
    bit<32> count2;
}

struct headers {
    ipv4_t ipv4;
}

parser HhParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control HhIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<32>>(65536) sketch1;
    register<bit<32>>(65536) sketch2;
    action drop_() {
        mark_to_drop(smeta);
    }
    action update_sketch() {
        hash(meta.idx1);
        hash(meta.idx2);
        sketch1.read(meta.count1, (bit<32>)meta.idx1);
        sketch2.read(meta.count2, (bit<32>)meta.idx2);
        sketch1.write((bit<32>)meta.idx1, meta.count1 + 32w1);
        sketch2.write((bit<32>)meta.idx2, meta.count2 + 32w1);
    }
    table sketch {
        key = {
            hdr.ipv4.isValid(): exact;
            hdr.ipv4.srcAddr: ternary;
        }
        actions = { update_sketch; NoAction; }
    }
    action mark_heavy() {
        hdr.ipv4.ttl = 8w0;
        mark_to_drop(smeta);
    }
    action forward(bit<9> port) {
        smeta.egress_spec = port;
    }
    table threshold {
        key = { meta.count1: ternary; meta.count2: ternary; }
        actions = { mark_heavy; forward; }
    }
    apply {
        sketch.apply();
        threshold.apply();
    }
}

control HhEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control HhDeparser(packet_out pkt, in headers hdr) {
    apply { pkt.emit(hdr.ipv4); }
}

V1Switch(HhParser(), HhIngress(), HhEgress(), HhDeparser()) main;
`,
}

// heavy_hitter_2: variant indexing sketches directly with header bits;
// multiple tables need keys (Table 1: 5/5/0, 6 keys).
var heavyHitter2 = &Program{
	Name: "heavy_hitter_2",
	Description: "heavy hitter with header-indexed registers; several " +
		"fixable out-of-bounds and validity bugs",
	Expect: Expectation{MinBugs: 2, NeedsKeys: true},
	Source: `
header ipv4_t {
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header udp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<16> length_;
    bit<16> checksum;
}

struct metadata {
    bit<32> tmp;
}

struct headers {
    ipv4_t ipv4;
    udp_t  udp;
}

parser Hh2Parser(packet_in pkt, out headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w17: parse_udp;
            default: accept;
        }
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition accept;
    }
}

control Hh2Ingress(inout headers hdr, inout metadata meta,
                   inout standard_metadata_t smeta) {
    register<bit<32>>(1024) counts;
    action drop_() {
        mark_to_drop(smeta);
    }
    action count_src() {
        counts.read(meta.tmp, (bit<32>)hdr.udp.srcPort);
        counts.write((bit<32>)hdr.udp.srcPort, meta.tmp + 32w1);
    }
    table count_table {
        key = { hdr.ipv4.dstAddr: ternary; }
        actions = { count_src; NoAction; }
    }
    action police(bit<9> port) {
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
        smeta.egress_spec = port;
    }
    table police_table {
        key = { meta.tmp: ternary; }
        actions = { police; drop_; }
        default_action = drop_();
    }
    apply {
        count_table.apply();
        police_table.apply();
    }
}

control Hh2Egress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    apply { }
}

control Hh2Deparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.udp);
    }
}

V1Switch(Hh2Parser(), Hh2Ingress(), Hh2Egress(), Hh2Deparser()) main;
`,
}

// hula: HULA-style utilization-aware load balancing with a probe header
// (Table 1: 6/3/0, 3 keys).
var hula = &Program{
	Name: "hula",
	Description: "HULA load balancing; probe processing is validity-" +
		"matched, data path needs keys",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true},
	Source: `
header ipv4_t {
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header hula_t {
    bit<24> dst_tor;
    bit<8>  path_util;
    bit<32> path_id;
}

struct metadata {
    bit<24> dst_tor;
    bit<32> best_path;
}

struct headers {
    ipv4_t ipv4;
    hula_t hula;
}

parser HuParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w0x42: parse_hula;
            default: accept;
        }
    }
    state parse_hula {
        pkt.extract(hdr.hula);
        transition accept;
    }
}

control HuIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<8>>(512) min_util;
    register<bit<32>>(512) best_path;
    action drop_() {
        mark_to_drop(smeta);
    }
    action process_probe() {
        min_util.write((bit<32>)hdr.hula.dst_tor, hdr.hula.path_util);
        best_path.write((bit<32>)hdr.hula.dst_tor, hdr.hula.path_id);
        mark_to_drop(smeta);
    }
    table hula_probe {
        key = {
            hdr.hula.isValid(): exact;
            hdr.hula.dst_tor: ternary;
        }
        actions = { process_probe; drop_; }
        default_action = drop_();
    }
    action pick_path(bit<9> port) {
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
        smeta.egress_spec = port;
    }
    table hula_fwd {
        key = { meta.dst_tor: exact; }
        actions = { pick_path; drop_; }
        default_action = drop_();
    }
    apply {
        if (hdr.hula.isValid()) {
            hula_probe.apply();
        } else {
            hula_fwd.apply();
        }
    }
}

control HuEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control HuDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.hula);
    }
}

V1Switch(HuParser(), HuIngress(), HuEgress(), HuDeparser()) main;
`,
}

// issue894: the p4c issue reproducer — header copies between possibly
// invalid instances (encap/decap), where dontCare widens coverage
// (Table 1: 5/5/0, 1 key).
var issue894 = &Program{
	Name: "issue894",
	Description: "p4c issue 894 reproducer; header copies between " +
		"possibly-invalid instances exercise dontCare handling",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true},
	Source: `
header h_t {
    bit<16> f1;
    bit<16> f2;
}

struct metadata {
    bit<1> tmp;
}

struct headers {
    h_t outer;
    h_t inner;
}

parser IsParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.outer);
        transition select(hdr.outer.f1) {
            16w1: parse_inner;
            default: accept;
        }
    }
    state parse_inner {
        pkt.extract(hdr.inner);
        transition accept;
    }
}

control IsIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action decap() {
        hdr.outer = hdr.inner;
        hdr.inner.setInvalid();
    }
    action fwd(bit<9> port) {
        hdr.inner.f2 = hdr.outer.f2;
        smeta.egress_spec = port;
    }
    table process {
        key = { hdr.outer.f1: exact; }
        actions = { decap; fwd; drop_; }
        default_action = drop_();
    }
    apply {
        process.apply();
        smeta.egress_spec = 9w1;
    }
}

control IsEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control IsDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.outer);
        pkt.emit(hdr.inner);
    }
}

V1Switch(IsParser(), IsIngress(), IsEgress(), IsDeparser()) main;
`,
}

// ts_switching_16: timestamp-based switching (Table 1: 4/3/0, 2 keys).
var tsSwitching16 = &Program{
	Name: "ts_switching_16",
	Description: "timestamp switching; one controllable bug, one needing " +
		"a key",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true},
	Source: `
header ts_t {
    bit<48> ts;
    bit<16> kind;
}

struct metadata {
    bit<48> delta;
}

struct headers {
    ts_t ts;
}

parser TsParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: parse_ts;
            default: accept;
        }
    }
    state parse_ts {
        pkt.extract(hdr.ts);
        transition accept;
    }
}

control TsIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action compute_delta() {
        meta.delta = smeta.ingress_global_timestamp - hdr.ts.ts;
    }
    table stamp {
        key = {
            hdr.ts.isValid(): exact;
            hdr.ts.kind: exact;
        }
        actions = { compute_delta; NoAction; }
    }
    action out_port(bit<9> port) {
        hdr.ts.ts = smeta.ingress_global_timestamp;
        smeta.egress_spec = port;
    }
    table switching {
        key = { meta.delta: ternary; }
        actions = { out_port; drop_; }
        default_action = drop_();
    }
    apply {
        stamp.apply();
        switching.apply();
    }
}

control TsEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control TsDeparser(packet_out pkt, in headers hdr) {
    apply { pkt.emit(hdr.ts); }
}

V1Switch(TsParser(), TsIngress(), TsEgress(), TsDeparser()) main;
`,
}

// ndp_router_16: NDP-style router with a priority queue decision
// (Table 1: 4/4/0, 3 keys).
var ndpRouter16 = &Program{
	Name: "ndp_router_16",
	Description: "NDP router; truncation path and routing table need " +
		"validity keys",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true},
	Source: `
header ipv4_t {
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> totalLen;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header ndp_t {
    bit<16> flags;
    bit<16> seq;
}

struct metadata {
    bit<1> is_ndp;
}

struct headers {
    ipv4_t ipv4;
    ndp_t  ndp;
}

parser NdpParser(packet_in pkt, out headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w0x99: parse_ndp;
            default: accept;
        }
    }
    state parse_ndp {
        pkt.extract(hdr.ndp);
        transition accept;
    }
}

control NdpIngress(inout headers hdr, inout metadata meta,
                   inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action route(bit<9> port) {
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
        smeta.egress_spec = port;
    }
    table routing {
        key = { hdr.ipv4.dstAddr: lpm; }
        actions = { route; drop_; }
        default_action = drop_();
    }
    action truncate_payload() {
        hdr.ndp.flags = hdr.ndp.flags | 16w0x8000;
        truncate(smeta);
    }
    table ndp_trunc {
        key = { smeta.enq_qdepth: ternary; }
        actions = { truncate_payload; NoAction; }
    }
    apply {
        routing.apply();
        ndp_trunc.apply();
    }
}

control NdpEgress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    apply { }
}

control NdpDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.ndp);
    }
}

V1Switch(NdpParser(), NdpIngress(), NdpEgress(), NdpDeparser()) main;
`,
}
