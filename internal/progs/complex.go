package progs

func init() {
	register(multiProtocol)
	register(mplbRouter)
	register(netchain)
	register(netchain16)
	register(simpleNat)
	register(linearroad16)
}

// 07-MultiProtocol: the tutorial multi-protocol parser — a wide parse
// graph where downstream tables touch conditionally-parsed headers
// (Table 1: 2/2/0, 2 keys).
var multiProtocol = &Program{
	Name: "07-MultiProtocol",
	Description: "tutorial multi-protocol pipeline (ethernet/ipv4/ipv6/" +
		"tcp/udp); forwarding tables need validity keys",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true},
	Source: `
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header ipv6_t {
    bit<8>   hopLimit;
    bit<8>   nextHdr;
    bit<128> srcAddr;
    bit<128> dstAddr;
}

header tcp_t {
    bit<16> srcPort;
    bit<16> dstPort;
}

header udp_t {
    bit<16> srcPort;
    bit<16> dstPort;
}

struct metadata {
    bit<16> l4_sport;
}

struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
    ipv6_t     ipv6;
    tcp_t      tcp;
    udp_t      udp;
}

parser MpParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800:  parse_ipv4;
            16w0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w6:  parse_tcp;
            8w17: parse_udp;
            default: accept;
        }
    }
    state parse_ipv6 {
        pkt.extract(hdr.ipv6);
        transition select(hdr.ipv6.nextHdr) {
            8w6:  parse_tcp;
            8w17: parse_udp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        transition accept;
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition accept;
    }
}

control MpIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action fwd_v4(bit<9> port) {
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
        smeta.egress_spec = port;
    }
    table ipv4_fwd {
        key = {
            hdr.ipv4.isValid(): exact;
            hdr.ipv4.dstAddr: lpm;
        }
        actions = { fwd_v4; drop_; }
        default_action = drop_();
    }
    action fwd_v6(bit<9> port) {
        hdr.ipv6.hopLimit = hdr.ipv6.hopLimit - 8w1;
        smeta.egress_spec = port;
    }
    table ipv6_fwd {
        key = { hdr.ipv6.dstAddr: lpm; }
        actions = { fwd_v6; drop_; }
        default_action = drop_();
    }
    action save_sport() {
        meta.l4_sport = hdr.tcp.srcPort;
    }
    table l4_table {
        key = { smeta.ingress_port: exact; }
        actions = { save_sport; NoAction; }
    }
    apply {
        if (hdr.ipv4.isValid()) {
            ipv4_fwd.apply();
        } else {
            ipv6_fwd.apply();
        }
        l4_table.apply();
    }
}

control MpEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control MpDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.ipv6);
        pkt.emit(hdr.tcp);
        pkt.emit(hdr.udp);
    }
}

V1Switch(MpParser(), MpIngress(), MpEgress(), MpDeparser()) main;
`,
}

// mplb_router-ppc: the paper's example of a genuine dataplane bug — a
// tcp header read inside an if condition that no prior table can rescue
// (Table 1: 2/2/1, 0 keys).
var mplbRouter = &Program{
	Name: "mplb_router-ppc",
	Description: "MPLB router; reads the tcp header in an if condition — " +
		"a dataplane bug no key addition can control (paper §5)",
	Expect: Expectation{MinBugs: 1, DataplaneBugs: 1},
	Source: `
header ipv4_t {
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header tcp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<8>  flags;
}

struct metadata {
    bit<16> server_id;
}

struct headers {
    ipv4_t ipv4;
    tcp_t  tcp;
}

parser MlParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w6: parse_tcp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        transition accept;
    }
}

control MlIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action to_server(bit<16> server, bit<9> port) {
        meta.server_id = server;
        smeta.egress_spec = port;
    }
    table server_select {
        key = {
            hdr.tcp.isValid(): exact;
            hdr.tcp.dstPort: exact;
        }
        actions = { to_server; drop_; }
        default_action = drop_();
    }
    apply {
        // Dataplane bug: hdr.tcp.flags is read before any table can
        // constrain validity; no prior table is able to rescue it.
        if (hdr.tcp.flags == 8w2) {
            server_select.apply();
        } else {
            drop_();
        }
    }
}

control MlEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control MlDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.tcp);
    }
}

V1Switch(MlParser(), MlIngress(), MlEgress(), MlDeparser()) main;
`,
}

// netchain: in-network key-value store with sequence registers
// (Table 1: 4/4/0, 5 keys).
var netchain = &Program{
	Name: "netchain",
	Description: "NetChain replicated KV store; register-backed values " +
		"indexed by header keys need bounding keys",
	Expect: Expectation{MinBugs: 2, NeedsKeys: true},
	Source: `
header kv_t {
    bit<16> op;
    bit<32> kkey;
    bit<32> value;
    bit<16> seq;
}

header udp_t {
    bit<16> srcPort;
    bit<16> dstPort;
}

struct metadata {
    bit<32> stored;
}

struct headers {
    udp_t udp;
    kv_t  kv;
}

parser NcParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dstPort) {
            16w9000: parse_kv;
            default: accept;
        }
    }
    state parse_kv {
        pkt.extract(hdr.kv);
        transition accept;
    }
}

control NcIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<32>>(1024) store;
    register<bit<16>>(1024) seqs;
    action drop_() {
        mark_to_drop(smeta);
    }
    action kv_read(bit<9> reply_port) {
        store.read(meta.stored, (bit<32>)hdr.kv.kkey);
        hdr.kv.value = meta.stored;
        smeta.egress_spec = reply_port;
    }
    action kv_write(bit<9> next_hop) {
        store.write((bit<32>)hdr.kv.kkey, hdr.kv.value);
        seqs.write((bit<32>)hdr.kv.kkey, hdr.kv.seq);
        smeta.egress_spec = next_hop;
    }
    table chain {
        key = {
            hdr.kv.isValid(): exact;
            hdr.kv.op: exact;
        }
        actions = { kv_read; kv_write; drop_; }
        default_action = drop_();
    }
    apply {
        chain.apply();
    }
}

control NcEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control NcDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.udp);
        pkt.emit(hdr.kv);
    }
}

V1Switch(NcParser(), NcIngress(), NcEgress(), NcDeparser()) main;
`,
}

// netchain_16: the P4-16 port with chain routing added
// (Table 1: 6/6/0, 5 keys).
var netchain16 = &Program{
	Name: "netchain_16",
	Description: "NetChain P4-16 port with chain routing; more tables, " +
		"more fixable bugs",
	Expect: Expectation{MinBugs: 2, NeedsKeys: true},
	Source: `
header kv_t {
    bit<16> op;
    bit<32> kkey;
    bit<32> value;
}

header chain_t {
    bit<8>  hops;
    bit<32> next_node;
}

struct metadata {
    bit<32> stored;
}

struct headers {
    kv_t    kv;
    chain_t chain;
}

parser Nc16Parser(packet_in pkt, out headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: parse_kv;
            default: accept;
        }
    }
    state parse_kv {
        pkt.extract(hdr.kv);
        transition select(hdr.kv.op) {
            16w2: parse_chain;
            default: accept;
        }
    }
    state parse_chain {
        pkt.extract(hdr.chain);
        transition accept;
    }
}

control Nc16Ingress(inout headers hdr, inout metadata meta,
                    inout standard_metadata_t smeta) {
    register<bit<32>>(512) store;
    action drop_() {
        mark_to_drop(smeta);
    }
    action do_read(bit<9> port) {
        store.read(meta.stored, (bit<32>)hdr.kv.kkey);
        hdr.kv.value = meta.stored;
        smeta.egress_spec = port;
    }
    action do_write() {
        store.write((bit<32>)hdr.kv.kkey, hdr.kv.value);
    }
    table kv_ops {
        key = {
            hdr.kv.isValid(): exact;
            hdr.kv.op: exact;
        }
        actions = { do_read; do_write; drop_; }
        default_action = drop_();
    }
    action next_in_chain(bit<9> port) {
        hdr.chain.hops = hdr.chain.hops - 8w1;
        smeta.egress_spec = port;
    }
    table chain_route {
        key = { hdr.chain.next_node: exact; }
        actions = { next_in_chain; drop_; }
        default_action = drop_();
    }
    apply {
        kv_ops.apply();
        chain_route.apply();
    }
}

control Nc16Egress(inout headers hdr, inout metadata meta,
                   inout standard_metadata_t smeta) {
    apply { }
}

control Nc16Deparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.kv);
        pkt.emit(hdr.chain);
    }
}

V1Switch(Nc16Parser(), Nc16Ingress(), Nc16Egress(), Nc16Deparser()) main;
`,
}

// simple_nat: the paper's running example (Figure 1), complete with the
// faulty ternary key, the missing ipv4_lpm validity key, and the
// egress-spec gap on the nat-hit/no-route path (Table 1: 7/2/0, 1 key).
var simpleNat = &Program{
	Name: "simple_nat",
	Description: "the paper's running example: NAT with ternary key over " +
		"a possibly-invalid header and a TTL decrement behind a " +
		"validity-blind lpm table",
	Expect: Expectation{MinBugs: 3, NeedsKeys: true, EgressSpecBug: true},
	Source: `
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<8>  versionIhl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<16> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header tcp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<32> seqNo;
    bit<32> ackNo;
    bit<16> window;
}

struct meta_t {
    bit<1>  do_forward;
    bit<32> ipv4_sa;
    bit<32> ipv4_da;
    bit<16> tcp_sp;
    bit<16> tcp_dp;
    bit<32> nhop_ipv4;
    bit<1>  is_ext_if;
}

struct metadata {
    meta_t meta;
}

struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
    tcp_t      tcp;
}

parser NatParser(packet_in pkt, out headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w6: parse_tcp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        transition accept;
    }
}

control NatIngress(inout headers hdr, inout metadata meta,
                   inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action set_if_info(bit<1> is_ext) {
        meta.meta.is_ext_if = is_ext;
    }
    table if_info {
        key = { smeta.ingress_port: exact; }
        actions = { set_if_info; drop_; }
        default_action = drop_();
    }
    action nat_miss_int_to_ext() {
        meta.meta.do_forward = 1w0;
        smeta.egress_spec = 9w510;
    }
    action nat_miss_ext_to_int() {
        // Paper §5.1 "egress spec not set": do_forward is cleared but no
        // forwarding decision is made — the packet leaks to port 0.
        meta.meta.do_forward = 1w0;
    }
    action nat_hit_int_to_ext(bit<32> srcAddr, bit<16> srcPort) {
        meta.meta.do_forward = 1w1;
        meta.meta.ipv4_sa = srcAddr;
        meta.meta.tcp_sp = srcPort;
    }
    action nat_hit_ext_to_int(bit<32> dstAddr, bit<16> dstPort) {
        meta.meta.do_forward = 1w1;
        meta.meta.ipv4_da = dstAddr;
        meta.meta.tcp_dp = dstPort;
    }
    table nat {
        key = {
            meta.meta.is_ext_if: exact;
            hdr.ipv4.isValid(): exact;
            hdr.tcp.isValid(): exact;
            hdr.ipv4.srcAddr: ternary;
            hdr.ipv4.dstAddr: ternary;
            hdr.tcp.srcPort: ternary;
            hdr.tcp.dstPort: ternary;
        }
        actions = {
            nat_miss_int_to_ext;
            nat_miss_ext_to_int;
            nat_hit_int_to_ext;
            nat_hit_ext_to_int;
            drop_;
        }
        default_action = drop_();
    }
    action set_nhop(bit<32> nhop_ipv4, bit<9> port) {
        meta.meta.nhop_ipv4 = nhop_ipv4;
        smeta.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
    }
    table ipv4_lpm {
        key = { meta.meta.ipv4_da: lpm; }
        actions = { set_nhop; drop_; }
        default_action = drop_();
    }
    action set_dmac(bit<48> dmac) {
        hdr.ethernet.dstAddr = dmac;
    }
    table forward {
        key = { meta.meta.nhop_ipv4: exact; }
        actions = { set_dmac; NoAction; }
    }
    apply {
        if_info.apply();
        nat.apply();
        if (meta.meta.do_forward == 1w1) {
            ipv4_lpm.apply();
            forward.apply();
        }
    }
}

control NatEgress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action rewrite_src(bit<48> smac) {
        hdr.ethernet.srcAddr = smac;
    }
    table send_frame {
        key = { smeta.egress_port: exact; }
        actions = { rewrite_src; NoAction; }
    }
    apply {
        send_frame.apply();
    }
}

control NatDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.tcp);
    }
}

V1Switch(NatParser(), NatIngress(), NatEgress(), NatDeparser()) main;
`,
}

// linearroad_16: the toll-road telemetry pipeline — the corpus's largest
// hand-written program; many register-backed segments plus one genuine
// dataplane bug (Table 1: 20/20/1, 20 keys).
var linearroad16 = &Program{
	Name: "linearroad_16",
	Description: "Linear Road toll computation; many register-indexed " +
		"tables needing keys plus one dataplane bug",
	Expect: Expectation{MinBugs: 4, NeedsKeys: true, DataplaneBugs: 1},
	Source: `
header lr_t {
    bit<8>  msg_type;
    bit<16> time;
    bit<32> vid;
    bit<8>  spd;
    bit<8>  xway;
    bit<8>  lane;
    bit<8>  dir;
    bit<8>  seg;
}

header accident_t {
    bit<8>  seg;
    bit<16> time;
}

header toll_t {
    bit<16> toll;
    bit<32> balance;
}

struct metadata {
    bit<32> seg_vol;
    bit<32> seg_spd_sum;
    bit<8>  has_accident;
    bit<16> cur_toll;
}

struct headers {
    lr_t       lr;
    accident_t accident;
    toll_t     toll;
}

parser LrParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: parse_lr;
            default: accept;
        }
    }
    state parse_lr {
        pkt.extract(hdr.lr);
        transition select(hdr.lr.msg_type) {
            8w1: parse_accident;
            8w2: parse_toll;
            default: accept;
        }
    }
    state parse_accident {
        pkt.extract(hdr.accident);
        transition accept;
    }
    state parse_toll {
        pkt.extract(hdr.toll);
        transition accept;
    }
}

control LrIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<32>>(256) seg_volume;
    register<bit<32>>(256) seg_speed;
    register<bit<8>>(256) accidents;
    register<bit<32>>(4096) balances;

    action drop_() {
        mark_to_drop(smeta);
    }
    action update_volume() {
        seg_volume.read(meta.seg_vol, (bit<32>)hdr.lr.seg);
        seg_volume.write((bit<32>)hdr.lr.seg, meta.seg_vol + 32w1);
    }
    table volume {
        key = { hdr.lr.dir: exact; }
        actions = { update_volume; NoAction; }
    }
    action update_speed() {
        seg_speed.read(meta.seg_spd_sum, (bit<32>)hdr.lr.seg);
        seg_speed.write((bit<32>)hdr.lr.seg, meta.seg_spd_sum + (bit<32>)hdr.lr.spd);
    }
    table speed {
        key = { hdr.lr.lane: exact; }
        actions = { update_speed; NoAction; }
    }
    action record_accident() {
        accidents.write((bit<32>)hdr.accident.seg, 8w1);
        mark_to_drop(smeta);
    }
    table accident_table {
        key = {
            hdr.accident.isValid(): exact;
            hdr.accident.seg: ternary;
        }
        actions = { record_accident; NoAction; }
    }
    action charge_toll(bit<16> base) {
        meta.cur_toll = base;
        balances.write((bit<32>)hdr.lr.vid, hdr.toll.balance + (bit<32>)base);
        smeta.egress_spec = 9w1;
    }
    action waive() {
        meta.cur_toll = 16w0;
        smeta.egress_spec = 9w1;
    }
    table toll_table {
        key = { meta.has_accident: exact; }
        actions = { charge_toll; waive; drop_; }
        default_action = drop_();
    }
    apply {
        volume.apply();
        speed.apply();
        accident_table.apply();
        // Dataplane bug (paper: mplb-style): reads the accident header
        // in a condition regardless of validity.
        if (hdr.accident.time > 16w100) {
            meta.has_accident = 8w1;
        }
        toll_table.apply();
    }
}

control LrEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control LrDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.lr);
        pkt.emit(hdr.accident);
        pkt.emit(hdr.toll);
    }
}

V1Switch(LrParser(), LrIngress(), LrEgress(), LrDeparser()) main;
`,
}
