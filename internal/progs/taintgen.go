package progs

import (
	"fmt"
	"strings"
)

// taintLCG is a tiny deterministic linear congruential generator used to
// seed placement in GenerateTaintSwitch. Same seed, same program,
// byte-for-byte — the taint golden tests and the CI determinism job
// depend on that.
type taintLCG struct{ state uint32 }

func (g *taintLCG) next(n int) int {
	g.state = g.state*1103515245 + 12345
	return int((g.state >> 16) % uint32(n))
}

// GenerateTaintSwitch deterministically produces a pipeline that
// exercises the information-flow analysis. It is not part of the
// default corpus (progs.All) — `bf4 lint -taint-family leaky|clean`
// and the taint tests generate it on demand.
//
// The program carries an @sensitive-annotated credential field
// (cred.token) extracted behind ipv4, plus scale benign forwarding
// slices whose table keys and metadata writes must all come out
// statically clean. The seed shuffles where the interesting stages sit
// among the benign slices, so positions differ per seed while the
// verdict set does not.
//
// leaky = true adds three flows:
//
//   - a direct copy of cred.token into an emitted telemetry field
//     (solver-confirmed leak);
//   - a table keyed on cred.token (solver-confirmed leak);
//   - a two-branch gadget (scratch is written under diffserv==1, the
//     sink reads it under diffserv==2) that the path-insensitive
//     dataflow must flag and the solver must dismiss: no single packet
//     takes both branches.
//
// leaky = false routes the token only through statically-clean uses: a
// fully-masked copy (token & 0, killed by the per-bit known-bits
// refinement at build time) and a scratch variable overwritten before
// it reaches the sink (killed by the dataflow labels).
func GenerateTaintSwitch(scale, seed int, leaky bool) string {
	if scale < 1 {
		scale = 1
	}
	g := &taintLCG{state: uint32(seed)*2654435761 + 1}
	// Interleave the three interesting stages at seeded slice offsets.
	directAt := g.next(scale)
	keyAt := g.next(scale)
	gadgetAt := g.next(scale)

	var b strings.Builder
	w := func(format string, args ...interface{}) {
		fmt.Fprintf(&b, format, args...)
		b.WriteString("\n")
	}

	kind := "clean"
	if leaky {
		kind = "leaky"
	}
	w(`// Generated taint-exercise switch (%s family), scale %d, seed %d.`, kind, scale, seed)
	w(`header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header cred_t {
    bit<16> user;
    @sensitive
    bit<32> token;
}

header telem_t {
    bit<32> data;
    bit<32> aux;
    bit<8>  tag;
}

struct taint_meta_t {
    bit<32> scratch;
    bit<16> fwd_class;
    bit<8>  stage;
}

struct metadata {
    taint_meta_t m;
}

struct headers {
    ethernet_t ethernet;
    ipv4_t ipv4;
    cred_t cred;
    telem_t telem;
}

parser TgParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w99: parse_cred;
            default: accept;
        }
    }
    state parse_cred {
        pkt.extract(hdr.cred);
        transition accept;
    }
}

control TgIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action set_class(bit<16> cls) {
        meta.m.fwd_class = cls;
    }
    action forward(bit<9> port) {
        smeta.egress_spec = port;
    }`)

	// Benign slices: a classifier table plus a forwarding table per
	// slice. Every key and metadata write here must come out statically
	// clean under the label analysis.
	for i := 0; i < scale; i++ {
		w(`
    action tag_stage_%d() {
        meta.m.stage = 8w%d;
    }
    table classify_%d {
        key = {
            hdr.ethernet.dstAddr: exact;
            hdr.ipv4.isValid(): exact;
        }
        actions = { set_class; tag_stage_%d; drop_; }
        default_action = drop_();
    }
    table fwd_%d {
        key = { meta.m.fwd_class: exact; }
        actions = { forward; drop_; }
        default_action = drop_();
    }`, i, i%250, i, i, i)
	}

	if leaky {
		// Table keyed directly on the sensitive credential.
		w(`
    action route_cred(bit<9> port) {
        smeta.egress_spec = port;
    }
    table cred_lookup {
        key = { hdr.cred.token: exact; }
        actions = { route_cred; NoAction; }
    }`)
	}

	// Apply block.
	w(`
    apply {
        hdr.telem.setValid();
        hdr.telem.tag = 8w1;`)
	for i := 0; i < scale; i++ {
		w(`        classify_%d.apply();`, i)
		w(`        fwd_%d.apply();`, i)
		if leaky {
			if i == directAt {
				w(`        if (hdr.cred.isValid()) {
            hdr.telem.data = hdr.cred.token;
        }`)
			}
			if i == keyAt {
				w(`        if (hdr.cred.isValid()) {
            cred_lookup.apply();
        }`)
			}
			if i == gadgetAt {
				w(`        if (hdr.ipv4.diffserv == 8w1) {
            meta.m.scratch = hdr.cred.token;
        }
        if (hdr.ipv4.diffserv == 8w2) {
            hdr.telem.aux = meta.m.scratch;
        }`)
			}
		} else {
			if i == directAt {
				w(`        if (hdr.cred.isValid()) {
            hdr.telem.data = hdr.cred.token & 32w0;
        }`)
			}
			if i == gadgetAt {
				w(`        meta.m.scratch = hdr.cred.token;
        meta.m.scratch = 32w0;
        hdr.telem.aux = meta.m.scratch;`)
			}
		}
	}
	w(`    }
}

control TgEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    action rewrite_smac(bit<48> smac) {
        hdr.ethernet.srcAddr = smac;
    }
    table egress_rewrite {
        key = { smeta.egress_port: exact; }
        actions = { rewrite_smac; NoAction; }
    }
    apply {
        egress_rewrite.apply();
    }
}

control TgDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.telem);
    }
}

V1Switch(TgParser(), TgIngress(), TgEgress(), TgDeparser()) main;`)

	return b.String()
}
