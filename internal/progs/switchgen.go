package progs

import (
	"fmt"
	"strings"
)

// DefaultSwitchScale sizes the generated switch program. Each scale unit
// adds a tunnel-termination slice (decap action + table), an ACL slice
// and a QoS slice, mirroring how switch.p4's bulk comes from replicated
// per-protocol stages. The default lands in the same order of magnitude
// as the paper's 6.2 KLOC program in tables and bugs.
const DefaultSwitchScale = 16

// SwitchProgram returns the generated datacenter-switch program at the
// default scale.
func SwitchProgram() *Program {
	return &Program{
		Name: "switch",
		Description: "generated production-style datacenter switch " +
			"(validation, L2, L3, fabric, tunnel termination, ACL, QoS " +
			"stages) mirroring switch.p4's bug structure",
		Expect: Expectation{MinBugs: 20, NeedsKeys: true},
		Source: GenerateSwitch(DefaultSwitchScale),
	}
}

// GenerateSwitch deterministically produces a switch.p4-like program.
// The generated pipeline reproduces the paper's §5.1 case studies:
//
//   - validate_outer_ethernet matching on vlan_tag validity bits (the
//     "missing assumptions" example) — controllable by Infer;
//   - fabric_ingress_dst_lkp matching a fabric-header field exactly
//     without a validity key (the "missing validity checks" example) —
//     needs a key fix;
//   - tunnel decap stages copying inner headers outward (the encap
//     dontCare example);
//   - replicated ACL/QoS slices touching conditionally-parsed L4
//     headers, a mix of controllable and fixable bugs.
func GenerateSwitch(scale int) string {
	if scale < 1 {
		scale = 1
	}
	var b strings.Builder
	w := func(format string, args ...interface{}) {
		fmt.Fprintf(&b, format, args...)
		b.WriteString("\n")
	}

	// ------------------------------------------------ headers
	w(`// Generated datacenter switch (bf4 reproduction corpus), scale %d.`, scale)
	w(`header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header fabric_header_t {
    bit<3>  packetType;
    bit<2>  headerVersion;
    bit<2>  packetVersion;
    bit<1>  pad1;
    bit<3>  fabricColor;
    bit<5>  fabricQos;
    bit<8>  dstDevice;
    bit<16> dstPortOrGroup;
}

header fabric_header_unicast_t {
    bit<1>  routed;
    bit<1>  outerRouted;
    bit<1>  tunnelTerminate;
    bit<5>  ingressTunnelType;
    bit<16> nexthopIndex;
}

header vlan_tag_t {
    bit<3>  pcp;
    bit<1>  cfi;
    bit<12> vid;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3>  flags;
    bit<13> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header ipv6_t {
    bit<4>   version;
    bit<8>   trafficClass;
    bit<20>  flowLabel;
    bit<16>  payloadLen;
    bit<8>   nextHdr;
    bit<8>   hopLimit;
    bit<128> srcAddr;
    bit<128> dstAddr;
}

header tcp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<32> seqNo;
    bit<32> ackNo;
    bit<8>  flags;
    bit<16> window;
}

header udp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<16> length_;
    bit<16> checksum;
}`)
	for i := 0; i < scale; i++ {
		w(`
header tun%d_t {
    bit<24> vni;
    bit<8>  flags;
    bit<16> reserved;
}`, i)
	}

	// ------------------------------------------------ metadata
	w(`
struct ingress_metadata_t {
    bit<16> ifindex;
    bit<12> outer_vlan;
    bit<1>  port_type;
    bit<16> bd;
    bit<16> nexthop_index;
    bit<1>  routed;
    bit<2>  lkp_pkt_type;
    bit<16> lkp_mac_type;
    bit<3>  lkp_pcp;
    bit<8>  acl_label;
    bit<8>  qos_label;
    bit<1>  tunnel_terminate;
    bit<5>  ingress_tunnel_type;
    bit<32> stats_idx;
}

struct metadata {
    ingress_metadata_t ig;
}`)

	// headers struct
	w(`
struct headers {
    ethernet_t ethernet;
    fabric_header_t fabric_header;
    fabric_header_unicast_t fabric_header_unicast;
    vlan_tag_t[2] vlan_tag_;
    ipv4_t ipv4;
    ipv6_t ipv6;
    tcp_t tcp;
    udp_t udp;
    ethernet_t inner_ethernet;
    ipv4_t inner_ipv4;`)
	for i := 0; i < scale; i++ {
		w(`    tun%d_t tun%d;`, i, i)
	}
	w(`}`)

	// ------------------------------------------------ parser
	w(`
parser SwParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x9000: parse_fabric;
            16w0x8100: parse_vlan;
            16w0x800:  parse_ipv4;
            16w0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_fabric {
        pkt.extract(hdr.fabric_header);
        transition select(hdr.fabric_header.packetType) {
            3w1: parse_fabric_unicast;
            default: accept;
        }
    }
    state parse_fabric_unicast {
        pkt.extract(hdr.fabric_header_unicast);
        transition accept;
    }
    state parse_vlan {
        pkt.extract(hdr.vlan_tag_[0]);
        transition select(hdr.vlan_tag_[0].etherType) {
            16w0x8100: parse_qinq;
            16w0x800:  parse_ipv4;
            16w0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_qinq {
        pkt.extract(hdr.vlan_tag_[1]);
        transition select(hdr.vlan_tag_[1].etherType) {
            16w0x800:  parse_ipv4;
            16w0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w6:  parse_tcp;
            8w17: parse_udp;
            default: accept;
        }
    }
    state parse_ipv6 {
        pkt.extract(hdr.ipv6);
        transition select(hdr.ipv6.nextHdr) {
            8w6:  parse_tcp;
            8w17: parse_udp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        transition accept;
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.dstPort) {`)
	for i := 0; i < scale; i++ {
		w(`            16w%d: parse_tun%d;`, 4789+i, i)
	}
	w(`            default: accept;
        }
    }`)
	for i := 0; i < scale; i++ {
		w(`    state parse_tun%d {
        pkt.extract(hdr.tun%d);
        pkt.extract(hdr.inner_ethernet);
        transition select(hdr.inner_ethernet.etherType) {
            16w0x800: parse_inner_ipv4;
            default: accept;
        }
    }`, i, i)
	}
	w(`    state parse_inner_ipv4 {
        pkt.extract(hdr.inner_ipv4);
        transition accept;
    }
}`)

	// ------------------------------------------------ ingress
	w(`
control SwIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<32>>(16384) ingress_stats;

    action drop_() {
        mark_to_drop(smeta);
    }

    // --- port / ifindex mapping ---
    action set_ifindex(bit<16> ifindex, bit<1> port_type) {
        meta.ig.ifindex = ifindex;
        meta.ig.port_type = port_type;
    }
    table ingress_port_mapping {
        key = { smeta.ingress_port: exact; }
        actions = { set_ifindex; drop_; }
        default_action = drop_();
    }

    // --- paper §5.1 "missing assumptions": validate_outer_ethernet ---
    action malformed_outer_ethernet_packet() {
        meta.ig.lkp_pkt_type = 2w0;
        mark_to_drop(smeta);
    }
    action set_valid_outer_unicast_packet_untagged() {
        meta.ig.lkp_pkt_type = 2w1;
        meta.ig.lkp_mac_type = hdr.ethernet.etherType;
    }
    action set_valid_outer_unicast_packet_single_tagged() {
        meta.ig.lkp_pkt_type = 2w1;
        meta.ig.lkp_mac_type = hdr.vlan_tag_[0].etherType;
        meta.ig.lkp_pcp = hdr.vlan_tag_[0].pcp;
    }
    action set_valid_outer_unicast_packet_double_tagged() {
        meta.ig.lkp_pkt_type = 2w1;
        meta.ig.lkp_mac_type = hdr.vlan_tag_[1].etherType;
        meta.ig.lkp_pcp = hdr.vlan_tag_[0].pcp;
    }
    table validate_outer_ethernet {
        key = {
            hdr.ethernet.srcAddr: ternary;
            hdr.vlan_tag_[0].isValid(): exact;
            hdr.vlan_tag_[1].isValid(): exact;
        }
        actions = {
            malformed_outer_ethernet_packet;
            set_valid_outer_unicast_packet_untagged;
            set_valid_outer_unicast_packet_single_tagged;
            set_valid_outer_unicast_packet_double_tagged;
        }
        default_action = malformed_outer_ethernet_packet();
    }

    // --- paper §5.1 "missing validity checks": fabric lookup ---
    action terminate_fabric_unicast_packet() {
        smeta.egress_spec = (bit<9>)hdr.fabric_header.dstPortOrGroup;
        meta.ig.tunnel_terminate = hdr.fabric_header_unicast.tunnelTerminate;
        meta.ig.ingress_tunnel_type = hdr.fabric_header_unicast.ingressTunnelType;
        meta.ig.nexthop_index = hdr.fabric_header_unicast.nexthopIndex;
    }
    table fabric_ingress_dst_lkp {
        key = { hdr.fabric_header.dstDevice: exact; }
        actions = { NoAction; terminate_fabric_unicast_packet; }
    }

    // --- L2 ---
    action set_bd(bit<16> bd) {
        meta.ig.bd = bd;
    }
    table port_vlan_mapping {
        key = {
            meta.ig.ifindex: exact;
            hdr.vlan_tag_[0].isValid(): exact;
            hdr.vlan_tag_[0].vid: ternary;
        }
        actions = { set_bd; drop_; }
        default_action = drop_();
    }
    action smac_hit() {
        meta.ig.lkp_pkt_type = 2w1;
    }
    action smac_miss() {
        meta.ig.lkp_pkt_type = 2w2;
    }
    table smac {
        key = {
            meta.ig.bd: exact;
            hdr.ethernet.srcAddr: exact;
        }
        actions = { smac_hit; smac_miss; }
        default_action = smac_miss();
    }
    action dmac_hit(bit<16> ifindex) {
        meta.ig.ifindex = ifindex;
    }
    action dmac_redirect(bit<16> nexthop) {
        meta.ig.nexthop_index = nexthop;
        meta.ig.routed = 1w1;
    }
    table dmac {
        key = {
            meta.ig.bd: exact;
            hdr.ethernet.dstAddr: exact;
        }
        actions = { dmac_hit; dmac_redirect; drop_; }
        default_action = drop_();
    }

    // --- L3 ---
    action fib_hit_nexthop(bit<16> nexthop) {
        meta.ig.nexthop_index = nexthop;
        meta.ig.routed = 1w1;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
    }
    table ipv4_fib {
        key = {
            hdr.ipv4.isValid(): exact;
            hdr.ipv4.dstAddr: lpm;
        }
        actions = { fib_hit_nexthop; NoAction; }
    }
    action fib6_hit_nexthop(bit<16> nexthop) {
        meta.ig.nexthop_index = nexthop;
        meta.ig.routed = 1w1;
        hdr.ipv6.hopLimit = hdr.ipv6.hopLimit - 8w1;
    }
    table ipv6_fib {
        key = { hdr.ipv6.dstAddr: lpm; }
        actions = { fib6_hit_nexthop; NoAction; }
    }

    // --- nexthop resolution ---
    action set_egress(bit<9> port, bit<48> dmac_addr) {
        smeta.egress_spec = port;
        hdr.ethernet.dstAddr = dmac_addr;
    }
    table nexthop {
        key = { meta.ig.nexthop_index: exact; }
        actions = { set_egress; drop_; }
        default_action = drop_();
    }

    // --- statistics (register indexed by table-provided index) ---
    action count_rx(bit<32> idx) {
        meta.ig.stats_idx = idx;
        ingress_stats.write(meta.ig.stats_idx, (bit<32>)smeta.packet_length);
    }
    table rx_stats {
        key = { meta.ig.bd: exact; }
        actions = { count_rx; NoAction; }
    }`)

	// Tunnel decap slices.
	for i := 0; i < scale; i++ {
		w(`
    action decap_tun%d() {
        hdr.ethernet = hdr.inner_ethernet;
        hdr.ipv4 = hdr.inner_ipv4;
        hdr.tun%d.setInvalid();
        hdr.inner_ethernet.setInvalid();
        hdr.inner_ipv4.setInvalid();
        meta.ig.tunnel_terminate = 1w1;
    }
    table tunnel_decap_%d {
        key = { hdr.tun%d.vni: exact; }
        actions = { decap_tun%d; NoAction; }
    }`, i, i, i, i, i)
	}

	// ACL slices: even slices carry validity keys (controllable), odd
	// ones don't (fixable).
	for i := 0; i < scale; i++ {
		if i%2 == 0 {
			w(`
    action acl_deny_%d() {
        meta.ig.acl_label = 8w%d;
        mark_to_drop(smeta);
    }
    action acl_permit_%d(bit<8> label) {
        meta.ig.acl_label = label;
    }
    table acl_%d {
        key = {
            hdr.ipv4.isValid(): exact;
            hdr.tcp.isValid(): exact;
            hdr.ipv4.srcAddr: ternary;
            hdr.tcp.srcPort: ternary;
        }
        actions = { acl_deny_%d; acl_permit_%d; NoAction; }
    }`, i, i%250, i, i, i, i)
		} else {
			w(`
    action acl_mark_%d(bit<8> label) {
        meta.ig.acl_label = label;
        hdr.tcp.flags = hdr.tcp.flags | 8w1;
    }
    table acl_%d {
        key = { hdr.ipv4.dstAddr: ternary; }
        actions = { acl_mark_%d; NoAction; }
    }`, i, i, i)
		}
	}

	// QoS slices.
	for i := 0; i < scale; i++ {
		w(`
    action set_qos_%d(bit<8> label) {
        meta.ig.qos_label = label;
        hdr.ipv4.diffserv = (bit<8>)label;
    }
    table qos_%d {
        key = {
            hdr.ipv4.isValid(): exact;
            meta.ig.acl_label: ternary;
        }
        actions = { set_qos_%d; NoAction; }
    }`, i, i, i)
	}

	// Encap slices (paper §4.2 "increasing bug coverage"): copying a
	// possibly-invalid ipv4 into inner_ipv4 is either a bug (destroys a
	// live header) or a no-op the programmer cannot want (dontCare).
	// Controllable by Infer only with dontCare enabled.
	for i := 0; i < scale; i++ {
		w(`
    action do_encap_%d() {
        hdr.inner_ipv4 = hdr.ipv4;
    }
    table encap_%d {
        key = { hdr.ipv4.isValid(): exact; }
        actions = { do_encap_%d; NoAction; }
    }`, i, i, i)
	}

	// Multi-table slices (paper §4.2): tunnel_check_i validates
	// inner_ipv4 (keys ⊆ inner_fwd_i's keys); inner_fwd_i's use of
	// inner_ipv4 is controllable only by linking the two tables' rules.
	for i := 0; i < scale; i++ {
		w(`
    action validate_inner_%d() {
        hdr.inner_ipv4.setValid();
    }
    table tunnel_check_%d {
        key = { meta.ig.bd: exact; }
        actions = { validate_inner_%d; NoAction; }
        default_action = validate_inner_%d();
    }
    action use_inner_%d(bit<9> port) {
        hdr.inner_ipv4.ttl = hdr.inner_ipv4.ttl - 8w1;
        smeta.egress_spec = port;
    }
    table inner_fwd_%d {
        key = { meta.ig.bd: exact; meta.ig.nexthop_index: exact; }
        actions = { use_inner_%d; NoAction; }
    }`, i, i, i, i, i, i, i)
	}

	// Apply block.
	w(`
    apply {
        ingress_port_mapping.apply();
        validate_outer_ethernet.apply();
        if (hdr.fabric_header.isValid()) {
            fabric_ingress_dst_lkp.apply();
        } else {
            port_vlan_mapping.apply();
            smac.apply();
            dmac.apply();
            if (meta.ig.routed == 1w1) {
                if (hdr.ipv4.isValid()) {
                    ipv4_fib.apply();
                } else {
                    ipv6_fib.apply();
                }
                nexthop.apply();
            }
            rx_stats.apply();`)
	for i := 0; i < scale; i++ {
		w(`            tunnel_decap_%d.apply();`, i)
	}
	for i := 0; i < scale; i++ {
		w(`            acl_%d.apply();`, i)
	}
	for i := 0; i < scale; i++ {
		w(`            qos_%d.apply();`, i)
	}
	for i := 0; i < scale; i++ {
		w(`            encap_%d.apply();`, i)
	}
	for i := 0; i < scale; i++ {
		w(`            hdr.inner_ipv4.setInvalid();`)
		w(`            tunnel_check_%d.apply();`, i)
		w(`            inner_fwd_%d.apply();`, i)
	}
	w(`        }
    }
}`)

	// Egress + deparser.
	w(`
control SwEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    action rewrite_smac(bit<48> smac) {
        hdr.ethernet.srcAddr = smac;
    }
    table egress_smac_rewrite {
        key = { smeta.egress_port: exact; }
        actions = { rewrite_smac; NoAction; }
    }
    apply {
        egress_smac_rewrite.apply();
    }
}

control SwDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.fabric_header);
        pkt.emit(hdr.fabric_header_unicast);
        pkt.emit(hdr.vlan_tag_[0]);
        pkt.emit(hdr.vlan_tag_[1]);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.ipv6);
        pkt.emit(hdr.tcp);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.inner_ethernet);
        pkt.emit(hdr.inner_ipv4);
    }
}

V1Switch(SwParser(), SwIngress(), SwEgress(), SwDeparser()) main;`)

	return b.String()
}
