package progs

// Extended corpus: programs beyond the paper's Table 1 rows, exercising
// subset corners the named programs don't reach (header-stack push,
// stateful firewall registers, meter-style QoS, plain L3 routing). They
// participate in All() and the corpus shape tests like every other entry.
func init() {
	register(basicRouting)
	register(intTelemetry)
	register(firewallStateful)
	register(qosMeter)
}

var basicRouting = &Program{
	Name: "basic_routing",
	Description: "textbook L3 router (tutorial basic.p4): lpm route + " +
		"dmac rewrite, validity-blind next-hop table needs one key",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true},
	Source: `
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct metadata {
    bit<32> nhop;
}

struct headers {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}

parser BrParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control BrIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action set_nhop(bit<32> nhop) {
        meta.nhop = nhop;
    }
    table ipv4_route {
        key = {
            hdr.ipv4.isValid(): exact;
            hdr.ipv4.dstAddr: lpm;
        }
        actions = { set_nhop; drop_; }
        default_action = drop_();
    }
    action rewrite_mac(bit<48> dmac, bit<9> port) {
        hdr.ethernet.dstAddr = dmac;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
        smeta.egress_spec = port;
    }
    table next_hop {
        key = { meta.nhop: exact; }
        actions = { rewrite_mac; drop_; }
        default_action = drop_();
    }
    apply {
        ipv4_route.apply();
        next_hop.apply();
    }
}

control BrEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control BrDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(BrParser(), BrIngress(), BrEgress(), BrDeparser()) main;
`,
}

var intTelemetry = &Program{
	Name: "int_telemetry",
	Description: "in-band network telemetry: pushes per-hop metadata onto " +
		"a header stack — exercises push_front overflow instrumentation",
	Expect: Expectation{MinBugs: 1},
	Source: `
header int_shim_t {
    bit<8> hops;
    bit<8> maxHops;
}

header int_data_t {
    bit<32> switchId;
    bit<32> latency;
}

struct metadata {
    bit<1> do_int;
}

struct headers {
    int_shim_t       shim;
    int_data_t[4]    stack;
}

parser IntParser(packet_in pkt, out headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: parse_shim;
            default: accept;
        }
    }
    state parse_shim {
        pkt.extract(hdr.shim);
        transition select(hdr.shim.hops) {
            8w0: accept;
            default: parse_one;
        }
    }
    state parse_one {
        pkt.extract(hdr.stack.next);
        transition accept;
    }
}

control IntIngress(inout headers hdr, inout metadata meta,
                   inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action add_hop(bit<32> switchId, bit<9> port) {
        hdr.stack.push_front(1);
        hdr.stack[0].setValid();
        hdr.stack[0].switchId = switchId;
        hdr.stack[0].latency = (bit<32>)smeta.enq_qdepth;
        hdr.shim.hops = hdr.shim.hops + 8w1;
        smeta.egress_spec = port;
    }
    action transit(bit<9> port) {
        smeta.egress_spec = port;
    }
    table int_table {
        key = {
            hdr.shim.isValid(): exact;
            hdr.shim.hops: ternary;
        }
        actions = { add_hop; transit; drop_; }
        default_action = drop_();
    }
    apply {
        int_table.apply();
    }
}

control IntEgress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    apply { }
}

control IntDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.shim);
        pkt.emit(hdr.stack[0]);
        pkt.emit(hdr.stack[1]);
        pkt.emit(hdr.stack[2]);
        pkt.emit(hdr.stack[3]);
    }
}

V1Switch(IntParser(), IntIngress(), IntEgress(), IntDeparser()) main;
`,
}

var firewallStateful = &Program{
	Name: "firewall_stateful",
	Description: "stateful firewall: connection bloom filter in registers, " +
		"direction table; filter update needs validity keys",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true},
	Source: `
header ipv4_t {
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header tcp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<8>  flags;
}

struct metadata {
    bit<16> reg_pos;
    bit<1>  reg_val;
    bit<1>  direction;
}

struct headers {
    ipv4_t ipv4;
    tcp_t  tcp;
}

parser FwParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            8w6: parse_tcp;
            default: accept;
        }
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        transition accept;
    }
}

control FwIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<1>>(65536) bloom;
    action drop_() {
        mark_to_drop(smeta);
    }
    action set_direction(bit<1> dir) {
        meta.direction = dir;
    }
    table check_direction {
        key = { smeta.ingress_port: exact; }
        actions = { set_direction; drop_; }
        default_action = drop_();
    }
    action track_connection() {
        hash(meta.reg_pos);
        bloom.write((bit<32>)meta.reg_pos, 1w1);
    }
    action check_connection() {
        hash(meta.reg_pos);
        bloom.read(meta.reg_val, (bit<32>)meta.reg_pos);
    }
    table conntrack {
        key = { meta.direction: exact; hdr.tcp.flags: ternary; }
        actions = { track_connection; check_connection; NoAction; }
    }
    action fwd(bit<9> port) {
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
        smeta.egress_spec = port;
    }
    table forwarding {
        key = { meta.reg_val: exact; meta.direction: exact; }
        actions = { fwd; drop_; }
        default_action = drop_();
    }
    apply {
        check_direction.apply();
        conntrack.apply();
        forwarding.apply();
    }
}

control FwEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control FwDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.tcp);
    }
}

V1Switch(FwParser(), FwIngress(), FwEgress(), FwDeparser()) main;
`,
}

var qosMeter = &Program{
	Name: "qos_meter",
	Description: "two-rate QoS marker with a byte-counter register; the " +
		"marking table rewrites diffserv without a validity key",
	Expect: Expectation{MinBugs: 1, NeedsKeys: true},
	Source: `
header ipv4_t {
    bit<8>  diffserv;
    bit<8>  ttl;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct metadata {
    bit<2>  color;
    bit<32> bytes;
}

struct headers {
    ipv4_t ipv4;
}

parser QmParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control QmIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    register<bit<32>>(1024) byte_counts;
    action drop_() {
        mark_to_drop(smeta);
    }
    action meter_flow(bit<32> idx) {
        byte_counts.read(meta.bytes, idx);
        byte_counts.write(idx, meta.bytes + smeta.packet_length);
    }
    table metering {
        key = {
            hdr.ipv4.isValid(): exact;
            hdr.ipv4.srcAddr: ternary;
        }
        actions = { meter_flow; NoAction; }
    }
    action mark(bit<8> dscp, bit<9> port) {
        hdr.ipv4.diffserv = dscp;
        smeta.egress_spec = port;
    }
    table marking {
        key = { meta.bytes: ternary; }
        actions = { mark; drop_; }
        default_action = drop_();
    }
    apply {
        metering.apply();
        marking.apply();
    }
}

control QmEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    apply { }
}

control QmDeparser(packet_out pkt, in headers hdr) {
    apply { pkt.emit(hdr.ipv4); }
}

V1Switch(QmParser(), QmIngress(), QmEgress(), QmDeparser()) main;
`,
}
