package progs

import (
	"fmt"
	"strings"
)

// GeneratePropSwitch deterministically produces a pipeline plus a .props
// spec that exercises all three property verdict tiers. It is not part
// of the default corpus (progs.All) — `bf4 lint -props -family props`
// and the property tests generate it on demand.
//
// The program is a scale-wide classify/forward pipeline (the taintgen
// skeleton without the credential header) with two seeded features:
//
//   - an unconditional `meta.m.guard = 8w7` at ingress entry, making the
//     spec's `@assert(meta.m.guard == 8w7)` provable by constant
//     propagation alone (discharged: no solver query);
//   - a two-branch gadget (flag is set only when scratch == 1, scratch
//     is written only under diffserv == 1, the flag write requires
//     diffserv == 2) whose `@assert(meta.m.flag != 8w1)` the dataflow
//     cannot prove but the solver dismisses: no single packet takes both
//     branches.
//
// Two asserts are genuine violations the solver confirms with packet
// witnesses, chosen to sit on opposite sides of the inference boundary:
//
//   - `@after(fwd_0) (egress_spec != 0)` fails on action DATA (an
//     arbitrary controller can install forward(port=0)), which no
//     hit/action-cube annotation can forbid — it stays a dataplane bug;
//   - `@after(classify_0) (hit(classify_0) -> action_run(classify_0) !=
//     drop_)` fails on action SELECTION, so `bf4 -check=assert` infers
//     the annotation forbidding hit∧drop_ in classify_0 and the
//     property verifies after inference.
//
// The seed shuffles which slice hosts the gadget (and the source-comment
// @assume exercising inline extraction), so positions differ per seed
// while the verdict set does not. Same scale+seed, same bytes — the
// property golden tests and the CI determinism job depend on that.
func GeneratePropSwitch(scale, seed int) (src, props string) {
	if scale < 1 {
		scale = 1
	}
	g := &taintLCG{state: uint32(seed)*2654435761 + 1}
	gadgetAt := g.next(scale)

	var b strings.Builder
	w := func(format string, args ...interface{}) {
		fmt.Fprintf(&b, format, args...)
		b.WriteString("\n")
	}

	w(`// Generated property-exercise switch, scale %d, seed %d.`, scale, seed)
	w(`header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct prop_meta_t {
    bit<16> fwd_class;
    bit<8>  stage;
    bit<8>  guard;
    bit<32> scratch;
    bit<8>  flag;
}

struct metadata {
    prop_meta_t m;
}

struct headers {
    ethernet_t ethernet;
    ipv4_t ipv4;
}

parser PgParser(packet_in pkt, out headers hdr, inout metadata meta,
                inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control PgIngress(inout headers hdr, inout metadata meta,
                  inout standard_metadata_t smeta) {
    action drop_() {
        mark_to_drop(smeta);
    }
    action set_class(bit<16> cls) {
        meta.m.fwd_class = cls;
    }
    action forward(bit<9> port) {
        smeta.egress_spec = port;
    }`)

	for i := 0; i < scale; i++ {
		w(`
    action tag_stage_%d() {
        meta.m.stage = 8w%d;
    }
    table classify_%d {
        key = {
            hdr.ethernet.dstAddr: exact;
            hdr.ipv4.isValid(): exact;
        }
        actions = { set_class; tag_stage_%d; drop_; }
        default_action = drop_();
    }
    table fwd_%d {
        key = { meta.m.fwd_class: exact; }
        actions = { forward; drop_; }
        default_action = drop_();
    }`, i, i%250, i, i, i)
	}

	w(`
    apply {
        // @assume(hdr.ethernet.etherType != 16w0xBEEF)
        meta.m.guard = 8w7;`)
	for i := 0; i < scale; i++ {
		w(`        classify_%d.apply();`, i)
		w(`        fwd_%d.apply();`, i)
		if i == gadgetAt {
			w(`        if (hdr.ipv4.isValid()) {
            if (hdr.ipv4.diffserv == 8w1) {
                meta.m.scratch = 32w1;
            }
            if (hdr.ipv4.diffserv == 8w2) {
                if (meta.m.scratch == 32w1) {
                    meta.m.flag = 8w1;
                }
            }
        }`)
		}
	}
	w(`    }
}

control PgEgress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    action rewrite_smac(bit<48> smac) {
        hdr.ethernet.srcAddr = smac;
    }
    table egress_rewrite {
        key = { smeta.egress_port: exact; }
        actions = { rewrite_smac; NoAction; }
    }
    apply {
        egress_rewrite.apply();
    }
}

control PgDeparser(packet_out pkt, in headers hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(PgParser(), PgIngress(), PgEgress(), PgDeparser()) main;`)

	var s strings.Builder
	fmt.Fprintf(&s, "# Generated property spec for the prop-exercise switch, scale %d, seed %d.\n", scale, seed)
	s.WriteString("# Two confirmed violations (one inferable, one dataplane), one solver-dismissed\n")
	s.WriteString("# assert, one statically-discharged assert.\n")
	s.WriteString("@assume(standard_metadata.ingress_port != 9w511)\n")
	s.WriteString("@assert @after(fwd_0) (standard_metadata.egress_spec != 9w0)\n")
	s.WriteString("@assert @after(classify_0) (hit(classify_0) -> action_run(classify_0) != drop_)\n")
	s.WriteString("@assert(meta.m.flag != 8w1)\n")
	s.WriteString("@assert(meta.m.guard == 8w7)\n")

	return b.String(), s.String()
}
