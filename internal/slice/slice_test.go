package slice

import (
	"testing"

	"bf4/internal/ir"
	"bf4/internal/smt"
)

// program builds a CFG where only some assignments matter for the bug:
//
//	start -> a = in -> b = 42 -> c = a + 1 -> br(c == 5) -> bug | accept
//
// b is dead with respect to the bug; a and c are live.
func program() (*ir.Program, map[string]*ir.Node) {
	p := ir.NewProgram("s")
	in := p.NewVar("in", smt.BV(8))
	a := p.NewVar("a", smt.BV(8))
	b := p.NewVar("b", smt.BV(8))
	c := p.NewVar("c", smt.BV(8))
	nodes := map[string]*ir.Node{}
	start := p.NewNode(ir.Nop)
	p.Start = start
	na := p.NewNode(ir.Assign)
	na.Var, na.Expr = a, in.Term
	nodes["a"] = na
	nb := p.NewNode(ir.Assign)
	nb.Var, nb.Expr = b, p.F.BVConst64(42, 8)
	nodes["b"] = nb
	nc := p.NewNode(ir.Assign)
	nc.Var, nc.Expr = c, p.F.Add(a.Term, p.F.BVConst64(1, 8))
	nodes["c"] = nc
	br := p.NewNode(ir.Branch)
	br.Expr = p.F.Eq(c.Term, p.F.BVConst64(5, 8))
	nodes["br"] = br
	bug := p.NewNode(ir.BugTerm)
	nodes["bug"] = bug
	acc := p.NewNode(ir.AcceptTerm)
	p.Edge(start, na)
	p.Edge(na, nb)
	p.Edge(nb, nc)
	p.Edge(nc, br)
	p.Edge(br, bug)
	p.Edge(br, acc)
	p.Bugs = append(p.Bugs, bug)
	return p, nodes
}

func TestSliceDropsDeadAssign(t *testing.T) {
	p, n := program()
	keep, stats := WRTBugs(p)
	if !keep[n["a"]] || !keep[n["c"]] || !keep[n["br"]] {
		t.Fatalf("live nodes missing from slice: %v", keep)
	}
	if keep[n["b"]] {
		t.Fatal("dead assignment b kept in slice")
	}
	if stats.SliceInstructions >= stats.TotalInstructions {
		t.Fatalf("slice did not shrink: %d of %d", stats.SliceInstructions, stats.TotalInstructions)
	}
}

func TestSliceTransitiveDataDeps(t *testing.T) {
	// bug guard reads z; z = y; y = x; all three assignments must be kept.
	p := ir.NewProgram("chain")
	x := p.NewVar("x", smt.BV(8))
	y := p.NewVar("y", smt.BV(8))
	z := p.NewVar("z", smt.BV(8))
	start := p.NewNode(ir.Nop)
	p.Start = start
	ny := p.NewNode(ir.Assign)
	ny.Var, ny.Expr = y, x.Term
	nz := p.NewNode(ir.Assign)
	nz.Var, nz.Expr = z, y.Term
	br := p.NewNode(ir.Branch)
	br.Expr = p.F.Eq(z.Term, p.F.BVConst64(1, 8))
	bug := p.NewNode(ir.BugTerm)
	acc := p.NewNode(ir.AcceptTerm)
	p.Edge(start, ny)
	p.Edge(ny, nz)
	p.Edge(nz, br)
	p.Edge(br, bug)
	p.Edge(br, acc)
	p.Bugs = append(p.Bugs, bug)

	keep, _ := WRTBugs(p)
	if !keep[ny] || !keep[nz] {
		t.Fatal("transitive dependencies must be kept")
	}
}

func TestSliceExcludesPostBugCode(t *testing.T) {
	// Assignments on branches that cannot reach the bug are excluded.
	p := ir.NewProgram("post")
	c := p.NewVar("c", smt.BoolSort)
	w := p.NewVar("w", smt.BV(8))
	start := p.NewNode(ir.Nop)
	p.Start = start
	br := p.NewNode(ir.Branch)
	br.Expr = c.Term
	bug := p.NewNode(ir.BugTerm)
	nw := p.NewNode(ir.Assign) // only on the non-bug side
	nw.Var, nw.Expr = w, p.F.BVConst64(1, 8)
	acc := p.NewNode(ir.AcceptTerm)
	p.Edge(start, br)
	p.Edge(br, bug)
	p.Edge(br, nw)
	p.Edge(nw, acc)
	p.Bugs = append(p.Bugs, bug)

	keep, _ := WRTBugs(p)
	if keep[nw] {
		t.Fatal("assignment beyond the bug kept in slice")
	}
	if !keep[br] {
		t.Fatal("guard branch missing from slice")
	}
}

func TestWRTNodesCustomTarget(t *testing.T) {
	p, n := program()
	keep, _ := WRTNodes(p, []*ir.Node{n["bug"]})
	if !keep[n["a"]] || keep[n["b"]] {
		t.Fatal("WRTNodes disagrees with WRTBugs for the same target")
	}
}

func TestNoBugsEmptySlice(t *testing.T) {
	p := ir.NewProgram("clean")
	x := p.NewVar("x", smt.BV(8))
	start := p.NewNode(ir.Nop)
	p.Start = start
	a := p.NewNode(ir.Assign)
	a.Var, a.Expr = x, p.F.BVConst64(1, 8)
	acc := p.NewNode(ir.AcceptTerm)
	p.Edge(start, a)
	p.Edge(a, acc)
	keep, stats := WRTBugs(p)
	if len(keep) != 0 {
		t.Fatalf("bug-free program must slice to nothing, got %v", keep)
	}
	if stats.SliceInstructions != 0 {
		t.Fatalf("slice instructions = %d", stats.SliceInstructions)
	}
}
