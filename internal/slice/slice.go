// Package slice computes the program slice relevant to bug reachability
// (paper §4.1): the union of control dependences (branches on paths to
// bugs) and data dependences (assignments transitively feeding those
// branch conditions), as in PDG-based slicing [Horwitz–Reps–Binkley].
// Assignments outside the slice contribute no constraint to the
// reachability formulas, which is the paper's main model-checking
// speed-up (switch.p4: 17155 → 7087 instructions, 36 s → 11 s).
package slice

import (
	"bf4/internal/ir"
	"bf4/internal/smt"
)

// Stats reports the slicing ablation numbers for the evaluation harness.
type Stats struct {
	TotalInstructions int
	SliceInstructions int
}

// WRTBugs returns the set of Assign/Havoc nodes whose constraints are
// relevant to reaching any bug node, plus statistics. Pass the result as
// the keep set of wp.Compute.
func WRTBugs(p *ir.Program) (keep map[*ir.Node]bool, stats Stats) {
	return wrt(p, p.Bugs)
}

// WRTNodes slices with respect to an arbitrary set of target nodes.
func WRTNodes(p *ir.Program, targets []*ir.Node) (keep map[*ir.Node]bool, stats Stats) {
	return wrt(p, targets)
}

func wrt(p *ir.Program, targets []*ir.Node) (map[*ir.Node]bool, Stats) {
	reachable := p.Reachable()
	stats := Stats{TotalInstructions: p.NumInstructions()}

	// Backward closure: nodes from which some target is reachable.
	canReach := map[*ir.Node]bool{}
	var stack []*ir.Node
	for _, t := range targets {
		if reachable[t] && !canReach[t] {
			canReach[t] = true
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pr := range n.Preds {
			if reachable[pr] && !canReach[pr] {
				canReach[pr] = true
				stack = append(stack, pr)
			}
		}
	}

	// Flow-sensitive backward liveness restricted to the canReach region.
	// reach(target) contains exactly the branch conditions along paths to
	// a target, so branches in the region generate uses; an assignment
	// contributes (keep) iff its variable is live-out, i.e. some later
	// condition on a path to a target reads it. One reverse-topological
	// pass suffices on the acyclic CFG.
	topo := p.Topo()
	liveIn := map[*ir.Node]map[*ir.Var]bool{}
	keep := map[*ir.Node]bool{}
	varsOf := func(e *smt.Term, into map[*ir.Var]bool) {
		for _, vt := range e.Vars(nil) {
			if v, ok := p.Vars[vt.Name()]; ok {
				into[v] = true
			}
		}
	}
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		if !canReach[n] {
			continue
		}
		out := map[*ir.Var]bool{}
		for _, s := range n.Succs {
			if !canReach[s] {
				continue
			}
			for v := range liveIn[s] {
				out[v] = true
			}
		}
		in := out
		switch n.Kind {
		case ir.Branch:
			in = cloneSet(out)
			varsOf(n.Expr, in)
			keep[n] = true
		case ir.Assign:
			if out[n.Var] {
				keep[n] = true
				in = cloneSet(out)
				delete(in, n.Var)
				varsOf(n.Expr, in)
			}
		case ir.Havoc:
			if out[n.Var] {
				keep[n] = true
				in = cloneSet(out)
				delete(in, n.Var)
			}
		case ir.AssertPoint:
			keep[n] = true
		}
		liveIn[n] = in
	}

	stats.SliceInstructions = len(keep)
	return keep, stats
}

func cloneSet(m map[*ir.Var]bool) map[*ir.Var]bool {
	out := make(map[*ir.Var]bool, len(m)+4)
	for k := range m {
		out[k] = true
	}
	return out
}
