package baseline

import (
	"math/big"
	"testing"
	"time"

	"bf4/internal/core"
	"bf4/internal/dataplane"
	"bf4/internal/ir"
)

const natSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<1> do_forward; bit<32> nhop; }
struct metadata { meta_t meta; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action drop_() { mark_to_drop(smeta); }
    action nat_hit(bit<32> a) {
        meta.meta.do_forward = 1w1;
        meta.meta.nhop = a;
    }
    table nat {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
        actions = { drop_; nat_hit; }
        default_action = drop_();
    }
    action set_nhop(bit<32> nhop, bit<9> port) {
        meta.meta.nhop = nhop;
        smeta.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;
    }
    table ipv4_lpm {
        key = { meta.meta.nhop: lpm; }
        actions = { set_nhop; drop_; }
    }
    apply {
        nat.apply();
        if (meta.meta.do_forward == 1w1) {
            ipv4_lpm.apply();
        }
    }
}
V1Switch(P(), Ing()) main;
`

func compileNAT(t *testing.T) *core.Pipeline {
	t.Helper()
	pl, err := core.Compile(natSrc, ir.DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestP4VApproxFindsBug(t *testing.T) {
	pl := compileNAT(t)
	r := P4VApprox(pl)
	if !r.AnyBugReachable {
		t.Fatal("p4v-style query must find a bug in the NAT program")
	}
	if r.Model == nil {
		t.Fatal("no witness model")
	}
	if r.Duration <= 0 {
		t.Fatal("no duration recorded")
	}
}

func TestP4VApproxCleanProgram(t *testing.T) {
	src := `
header h_t { bit<8> x; }
struct headers { h_t h; }
struct metadata { bit<1> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply { smeta.egress_spec = 9w1; hdr.h.x = 8w5; }
}
V1Switch(P(), Ing()) main;
`
	pl, err := core.Compile(src, ir.DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	r := P4VApprox(pl)
	if r.AnyBugReachable {
		t.Fatal("clean program reported buggy")
	}
}

func TestVeraConcreteSnapshot(t *testing.T) {
	pl := compileNAT(t)
	// Snapshot with a sane rule: exploration must complete and find no
	// bug on this snapshot.
	snap := dataplane.NewSnapshot()
	snap.Insert("nat", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(0, 0)},
		Action: "drop_",
	})
	r := Vera(pl, VeraOptions{Snapshot: snap})
	if !r.Completed {
		t.Fatal("concrete exploration must complete")
	}
	if len(r.BugsHit) != 0 {
		t.Fatalf("sane snapshot hit bugs: %v", r.BugsHit)
	}
	if r.Paths == 0 {
		t.Fatal("no paths explored")
	}
}

func TestVeraConcreteFaultySnapshot(t *testing.T) {
	pl := compileNAT(t)
	// The paper's faulty rule makes the bug findable on this snapshot.
	snap := dataplane.NewSnapshot()
	snap.Insert("nat", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(0), dataplane.NewTernary(0, 0xFF000000)},
		Action: "nat_hit",
		Params: []*big.Int{big.NewInt(1)},
	})
	r := Vera(pl, VeraOptions{Snapshot: snap})
	if !r.Completed {
		t.Fatal("exploration must complete")
	}
	found := false
	for b := range r.BugsHit {
		if b.Bug == ir.BugInvalidKeyRead {
			found = true
		}
	}
	if !found {
		t.Fatalf("faulty snapshot's bug not found; hit %v", r.BugsHit)
	}
}

func TestVeraSymbolicFindsMore(t *testing.T) {
	pl := compileNAT(t)
	r := Vera(pl, VeraOptions{MaxPaths: 10000, Timeout: 30 * time.Second})
	if len(r.BugsHit) == 0 {
		t.Fatal("symbolic exploration must find the NAT bugs")
	}
	if r.Coverage() <= 0 || r.Coverage() > 1 {
		t.Fatalf("coverage = %v", r.Coverage())
	}
}

func TestVeraBudgetStopsExploration(t *testing.T) {
	pl := compileNAT(t)
	r := Vera(pl, VeraOptions{MaxPaths: 3})
	if r.Completed {
		t.Fatal("3-path budget cannot complete the NAT program")
	}
	if r.Paths > 4 {
		t.Fatalf("explored %d paths past the budget", r.Paths)
	}
}
