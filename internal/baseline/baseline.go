// Package baseline implements the two comparison systems of the paper's
// §5.2:
//
//   - P4VApprox mirrors how the paper approximates p4v: conjoin the
//     weakest preconditions of every bug into a single disjunctive query
//     and ask the solver once whether any bug is reachable. p4v then
//     relies on a human to add control-plane assertions and re-run; bf4's
//     advantage is automating that loop.
//
//   - Vera is a Vera-style symbolic-execution explorer: path-by-path DFS
//     over the program with per-branch satisfiability checks. With a
//     concrete snapshot it enumerates entry matches exactly (fast, but
//     verifies only that one snapshot); with symbolic entries the path
//     count explodes and exploration is budgeted, reporting the achieved
//     coverage — reproducing the paper's "didn't finish, ~30% coverage"
//     observation.
package baseline

import (
	"time"

	"bf4/internal/core"
	"bf4/internal/dataplane"
	"bf4/internal/ir"
	"bf4/internal/smt"
	"bf4/internal/solver"
)

// P4VResult is the outcome of the monolithic p4v-style query.
type P4VResult struct {
	AnyBugReachable bool
	// Model is a witness input when reachable.
	Model    smt.Env
	Duration time.Duration
}

// P4VApprox runs the single-query p4v approximation.
func P4VApprox(pl *core.Pipeline) *P4VResult {
	start := time.Now()
	f := pl.IR.F
	query := f.False()
	reachable := pl.IR.Reachable()
	for _, b := range pl.IR.Bugs {
		if !reachable[b] {
			continue
		}
		if c, ok := pl.Reach.Cond[b]; ok {
			query = f.Or(query, c)
		}
	}
	s := solver.New(f)
	res := &P4VResult{}
	if s.Check(query) == solver.Sat {
		res.AnyBugReachable = true
		res.Model = s.Model()
	}
	res.Duration = time.Since(start)
	return res
}

// VeraOptions bound the symbolic exploration.
type VeraOptions struct {
	// Snapshot, when non-nil, runs concrete-entry mode (the paper's
	// per-snapshot Vera). Nil explores symbolic entries.
	Snapshot *dataplane.Snapshot
	// MaxPaths bounds explored paths (0 = 1 << 20).
	MaxPaths int
	// Timeout bounds wall-clock time (0 = none).
	Timeout time.Duration
}

// VeraResult summarizes an exploration.
type VeraResult struct {
	Paths      int
	BugsHit    map[*ir.Node]bool
	Visited    int
	TotalNodes int
	Completed  bool
	Duration   time.Duration
}

// Coverage is the fraction of reachable CFG nodes visited.
func (r *VeraResult) Coverage() float64 {
	if r.TotalNodes == 0 {
		return 0
	}
	return float64(r.Visited) / float64(r.TotalNodes)
}

type veraExplorer struct {
	p        *ir.Program
	f        *smt.Factory
	s        *solver.Solver
	opts     VeraOptions
	deadline time.Time

	visited map[*ir.Node]bool
	bugs    map[*ir.Node]bool
	paths   int
	stopped bool
	havocN  int
}

// Vera explores the program path by path.
func Vera(pl *core.Pipeline, opts VeraOptions) *VeraResult {
	start := time.Now()
	if opts.MaxPaths == 0 {
		opts.MaxPaths = 1 << 20
	}
	ex := &veraExplorer{
		p:       pl.IR,
		f:       pl.IR.F,
		s:       solver.New(pl.IR.F),
		opts:    opts,
		visited: map[*ir.Node]bool{},
		bugs:    map[*ir.Node]bool{},
	}
	if opts.Timeout > 0 {
		ex.deadline = start.Add(opts.Timeout)
	}
	ex.explore(pl.IR.Start, pl.IR.F.True(), nil)

	res := &VeraResult{
		Paths:     ex.paths,
		BugsHit:   ex.bugs,
		Visited:   len(ex.visited),
		Completed: !ex.stopped,
		Duration:  time.Since(start),
	}
	for range pl.IR.Reachable() {
		res.TotalNodes++
	}
	return res
}

type veraEnv struct {
	parent *veraEnv
	key    *smt.Term
	val    *smt.Term
}

func (e *veraEnv) get(k *smt.Term) *smt.Term {
	for n := e; n != nil; n = n.parent {
		if n.key == k {
			return n.val
		}
	}
	return nil
}

func (e *veraEnv) set(k, v *smt.Term) *veraEnv {
	return &veraEnv{parent: e, key: k, val: v}
}

func (ex *veraExplorer) subst(t *smt.Term, e *veraEnv) *smt.Term {
	if e == nil {
		return t
	}
	m := map[*smt.Term]*smt.Term{}
	for _, vt := range t.Vars(nil) {
		if v := e.get(vt); v != nil && v != vt {
			m[vt] = v
		}
	}
	if len(m) == 0 {
		return t
	}
	return smt.Substitute(ex.f, t, m)
}

func (ex *veraExplorer) budgetExceeded() bool {
	if ex.paths >= ex.opts.MaxPaths {
		ex.stopped = true
		return true
	}
	if !ex.deadline.IsZero() && time.Now().After(ex.deadline) {
		ex.stopped = true
		return true
	}
	return false
}

func (ex *veraExplorer) explore(n *ir.Node, pc *smt.Term, env *veraEnv) {
	for {
		if ex.budgetExceeded() {
			return
		}
		ex.visited[n] = true
		switch n.Kind {
		case ir.BugTerm:
			ex.paths++
			ex.bugs[n] = true
			return
		case ir.AcceptTerm, ir.RejectTerm, ir.UnreachTerm:
			ex.paths++
			return
		case ir.Assign:
			env = env.set(n.Var.Term, ex.subst(n.Expr, env))
		case ir.Havoc:
			ex.havocN++
			fresh := ex.f.Var(n.Var.Name+"$vera"+itoa(ex.havocN), n.Var.Sort)
			env = env.set(n.Var.Term, fresh)
		case ir.AssertPoint:
			if ex.opts.Snapshot != nil {
				ex.exploreTable(n, pc, env)
				return
			}
		case ir.Branch:
			cond := ex.subst(n.Expr, env)
			if cond.IsTrue() {
				n = n.Succs[0]
				continue
			}
			if cond.IsFalse() {
				n = n.Succs[1]
				continue
			}
			tPC := ex.f.And(pc, cond)
			if ex.s.Check(tPC) == solver.Sat {
				ex.explore(n.Succs[0], tPC, env)
			}
			if ex.budgetExceeded() {
				return
			}
			fPC := ex.f.And(pc, ex.f.Not(cond))
			if ex.s.Check(fPC) != solver.Sat {
				ex.paths++
				return
			}
			pc = fPC
			n = n.Succs[1]
			continue
		}
		if len(n.Succs) == 0 {
			ex.paths++
			return
		}
		n = n.Succs[0]
	}
}

// exploreTable enumerates concrete entries at an assert point (snapshot
// mode): each matching entry binds the instance's control variables to
// constants, plus one miss branch.
func (ex *veraExplorer) exploreTable(n *ir.Node, pc *smt.Term, env *veraEnv) {
	inst := n.Instance
	entries := ex.opts.Snapshot.Entries[inst.Table.Name]
	f := ex.f
	cont := n.Succs[0]

	bind := func(e *veraEnv, entry *dataplane.Entry) *veraEnv {
		e = e.set(inst.HitVar.Term, f.True())
		idx := inst.ActIndex[entry.Action]
		e = e.set(inst.ActVar.Term, f.BVConst64(int64(idx), 8))
		for j := range inst.KeyVars {
			if j < len(entry.Keys) {
				e = e.set(inst.KeyVars[j].Term, f.BVConst(entry.Keys[j].Value, inst.KeyVars[j].Sort.Width))
				if inst.MaskVars[j] != nil {
					mask := dataplane.EffectiveMaskFor(inst.Table.Keys[j], entry.Keys[j])
					e = e.set(inst.MaskVars[j].Term, f.BVConst(mask, inst.MaskVars[j].Sort.Width))
				}
			}
		}
		for pi, pv := range inst.ParamVars[entry.Action] {
			val := int64(0)
			if pi < len(entry.Params) {
				e = e.set(pv.Term, f.BVConst(entry.Params[pi], pv.Sort.Width))
				continue
			}
			e = e.set(pv.Term, f.BVConst64(val, pv.Sort.Width))
		}
		return e
	}

	for _, entry := range entries {
		if ex.budgetExceeded() {
			return
		}
		// The expansion's own match assumes will constrain the packet
		// against the bound constants; feasibility is checked per branch.
		ex.explore(cont, pc, bind(env, entry))
	}
	// Miss branch.
	missEnv := env.set(inst.HitVar.Term, f.False())
	for _, pv := range inst.DefaultParamVars {
		missEnv = missEnv.set(pv.Term, f.BVConst64(0, pv.Sort.Width))
	}
	ex.explore(cont, pc, missEnv)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
