// Package driver orchestrates bf4's complete compile-time loop (paper
// Figure 3): find all potential bugs, infer controller annotations,
// propose fixes (missing keys + the egress-spec special case), rebuild
// the program with the fixes applied and re-infer, producing exactly the
// quantities reported in the paper's Table 1 — total bugs, bugs remaining
// after Infer, bugs remaining after fixes, keys added — plus the final
// annotations for the runtime shim and the fixed P4 source.
package driver

import (
	"fmt"
	"strings"
	"time"

	"bf4/internal/analysis"
	"bf4/internal/core"
	"bf4/internal/fixes"
	"bf4/internal/infer"
	"bf4/internal/ir"
	"bf4/internal/obs"
	"bf4/internal/p4/ast"
	"bf4/internal/p4/parser"
	"bf4/internal/p4/types"
	"bf4/internal/smt/rewrite"
)

// Config selects pipeline options for a run.
type Config struct {
	IR    ir.Options
	Infer infer.Options
	// Slicing enables bug-reachability slicing (paper default: on).
	Slicing bool
	// Analysis enables the static-analysis pre-pass (internal/analysis):
	// bug checks it proves unreachable are discharged without a solver
	// query, and lint diagnostics are collected on Result.Analysis. It is
	// a pure optimization for the verification verdict (opt out with
	// -analysis=off to cross-check).
	Analysis bool
	// Rewrite enables the term-level rewrite engine (internal/smt/rewrite):
	// every solver created for this run simplifies formulas through the
	// known-bits + interval abstract domain before bit-blasting, and bug
	// conditions that fold to false are discharged without a solver query.
	// Evaluation-preserving, so verdicts are identical either way (opt out
	// with -rewrite=off to cross-check).
	Rewrite bool
	// Incremental makes the bug-check solver persistent across all of a
	// slice's checks: each bug condition is asserted inside a retractable
	// activation scope so learned clauses survive check-to-check,
	// structural gate hashing shares CNF between checks' shared term DAGs,
	// and bounded inprocessing between checks cleans out retracted-scope
	// clauses. Verdicts and inferred annotations are identical either way
	// (opt out with -incremental=off to cross-check).
	Incremental bool
	// Workers bounds the per-instance inference fan-out (cmd/bf4's -j);
	// <= 0 means GOMAXPROCS. It overrides Infer.Workers when set. The
	// results are identical for every value — only wall-clock changes.
	Workers int
	// Obs, when non-nil, collects metrics from every layer of the run
	// (phase timings, per-query solver telemetry, pool utilization);
	// Trace, when non-nil, parents a span per pipeline phase for the
	// --trace-out tree. Both default nil (zero overhead), and every
	// artifact of the run — bug lists, annotations, fixed source — is
	// byte-identical with them on or off.
	Obs   *obs.Registry
	Trace *obs.Span
}

// DefaultConfig matches the paper's configuration.
func DefaultConfig() Config {
	return Config{IR: ir.DefaultOptions(), Infer: infer.DefaultOptions(), Slicing: true, Analysis: true, Rewrite: true, Incremental: true}
}

// Result is one full bf4 run over a program (one Table 1 row).
type Result struct {
	Name string
	LoC  int

	// Bugs is the number of reachable bugs assuming arbitrary entries.
	Bugs int
	// BugsAfterInfer counts bugs still reachable under the inferred
	// single/multi-table annotations.
	BugsAfterInfer int
	// BugsAfterFixes counts bugs still reachable after adding the
	// proposed keys (and applying the egress-spec special fix) and
	// re-running inference — genuine dataplane bugs.
	BugsAfterFixes int
	// KeysAdded and TablesTouched quantify the fix (Table 1 / §5).
	KeysAdded     int
	TablesTouched int
	// Rounds counts fix-point iterations of the rebuild loop (0 when the
	// initial inference already left nothing to fix).
	Rounds int

	Runtime time.Duration

	// Artifacts.
	Initial     *core.Pipeline
	Fixed       *core.Pipeline // nil when no fixes were needed
	InitialRep  *core.Report
	InferResult *infer.Result
	FinalInfer  *infer.Result // inference on the fixed program
	Fixes       *fixes.Result
	FixedSource string // fixed P4 program (empty when no fixes)
	Dataplane   []*core.Bug
	// Analysis is the static-analysis result for the initial program
	// (nil when Config.Analysis is off).
	Analysis *analysis.Result
}

// Run executes the full bf4 loop on a program.
func Run(name, src string, cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.Workers != 0 {
		cfg.Infer.Workers = cfg.Workers
	}
	cfg.Infer.Obs = cfg.Obs
	res := &Result{Name: name, LoC: countLoC(src)}

	compileSp, compileDone := obs.StartPhase(cfg.Obs, cfg.Trace, "compile")
	pl, err := core.CompileObs(src, cfg.IR, cfg.Slicing, cfg.Obs, compileSp)
	compileDone()
	if err != nil {
		return nil, err
	}
	if cfg.Rewrite {
		// Install the rewrite pass on this run's factory so every solver
		// built over it (bug finding, inference, fix rechecks) picks up a
		// private simplifier. The setting travels with the factory, so
		// concurrent runs with different configs stay isolated.
		pl.IR.F.SetSimplifyProvider(rewrite.Provider(pl.IR.F))
	}
	res.Initial = pl
	findBugs := func(pl *core.Pipeline, parent *obs.Span) (*core.Report, *analysis.Result) {
		opts := core.FindOptions{Obs: cfg.Obs, Trace: parent, Incremental: cfg.Incremental}
		if !cfg.Analysis {
			return pl.FindBugsWith(opts), nil
		}
		_, done := obs.StartPhase(cfg.Obs, parent, "analysis")
		ar := analysis.Run(pl.IR, pl.AST)
		done()
		opts.Skip = ar.Discharge
		return pl.FindBugsWith(opts), ar
	}
	rep, ar := findBugs(pl, cfg.Trace)
	res.Analysis = ar
	res.InitialRep = rep
	res.Bugs = rep.NumReachable()

	inferOpts := cfg.Infer
	inferSp, inferDone := obs.StartPhase(cfg.Obs, cfg.Trace, "inference")
	inferOpts.Trace = inferSp
	inf := infer.Run(pl, rep, inferOpts)
	inferDone()
	res.InferResult = inf
	res.BugsAfterInfer = len(inf.Uncontrolled)

	_, fixesDone := obs.StartPhase(cfg.Obs, cfg.Trace, "fixes")
	fx := fixes.Run(pl, inf.Uncontrolled)
	fixesDone()
	res.Fixes = fx
	res.KeysAdded = fx.TotalKeys()
	res.TablesTouched = fx.TablesTouched()

	if res.KeysAdded == 0 && len(fx.Special) == 0 {
		res.BugsAfterFixes = res.BugsAfterInfer
		res.Dataplane = inf.Uncontrolled
		res.FinalInfer = inf
		res.Runtime = time.Since(start)
		return res, nil
	}

	// Rebuild with the fixes applied, re-find, re-infer, and repeat while
	// new fixes keep appearing (Figure 3's loop back from "fixes" to
	// "infer predicates"; the corpus converges in one round, but nothing
	// guarantees that in general).
	allKeys := mergeKeys(cfg.IR.ExtraKeys, fx.Keys)
	egressFix := len(fx.Special) > 0
	const maxRounds = 3
	for round := 0; round < maxRounds; round++ {
		res.Rounds = round + 1
		roundSp, roundDone := obs.StartPhase(cfg.Obs, cfg.Trace, "rebuild")
		opts2 := cfg.IR
		opts2.ExtraKeys = allKeys
		opts2.InitEgressSpecDrop = opts2.InitEgressSpecDrop || egressFix
		pl2, err := core.CompileObs(src, opts2, cfg.Slicing, cfg.Obs, roundSp)
		if err != nil {
			roundDone()
			return nil, fmt.Errorf("rebuild with fixes: %w", err)
		}
		if cfg.Rewrite {
			// The rebuild creates a fresh factory; re-install the pass.
			pl2.IR.F.SetSimplifyProvider(rewrite.Provider(pl2.IR.F))
		}
		res.Fixed = pl2
		rep2, _ := findBugs(pl2, roundSp)
		inferOpts2 := cfg.Infer
		inferOpts2.Trace = roundSp
		inf2 := infer.Run(pl2, rep2, inferOpts2)
		res.FinalInfer = inf2
		res.BugsAfterFixes = len(inf2.Uncontrolled)
		res.Dataplane = inf2.Uncontrolled
		if res.BugsAfterFixes == 0 {
			roundDone()
			break
		}
		fx2 := fixes.Run(pl2, inf2.Uncontrolled)
		newKeys := 0
		for t, ks := range fx2.Keys {
			have := map[string]bool{}
			for _, k := range allKeys[t] {
				have[k] = true
			}
			for _, k := range ks {
				if !have[k] {
					allKeys[t] = append(allKeys[t], k)
					res.Fixes.Keys[t] = append(res.Fixes.Keys[t], k)
					newKeys++
				}
			}
		}
		if len(fx2.Special) > 0 && !egressFix {
			egressFix = true
			res.Fixes.Special = append(res.Fixes.Special, fx2.Special...)
			newKeys++
		}
		roundDone()
		if newKeys == 0 {
			break // only genuine dataplane bugs remain
		}
		res.KeysAdded = res.Fixes.TotalKeys()
		res.TablesTouched = res.Fixes.TablesTouched()
	}

	if fixedSrc, err := RewriteSource(src, pl.Info, res.Fixes); err == nil {
		res.FixedSource = fixedSrc
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// mergeKeys unions two table→keys maps, deduplicating: a key present in
// both ExtraKeys and a fix round (or proposed twice across rounds) must
// not be added to the table twice.
func mergeKeys(a, b map[string][]string) map[string][]string {
	out := map[string][]string{}
	seen := map[string]map[string]bool{}
	add := func(t, k string) {
		if seen[t] == nil {
			seen[t] = map[string]bool{}
		}
		if !seen[t][k] {
			seen[t][k] = true
			out[t] = append(out[t], k)
		}
	}
	for t, ks := range a {
		for _, k := range ks {
			add(t, k)
		}
	}
	for t, ks := range b {
		for _, k := range ks {
			add(t, k)
		}
	}
	return out
}

func countLoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t != "" && !strings.HasPrefix(t, "//") {
			n++
		}
	}
	return n
}

// RewriteSource produces the fixed P4 program: the proposed keys are
// appended to their tables (translated from canonical paths back to each
// control's parameter names) and re-printed.
func RewriteSource(src string, info *types.Info, fx *fixes.Result) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	info2, err := types.Check(prog)
	if err != nil {
		return "", err
	}
	for _, d := range prog.Decls {
		ctl, ok := d.(*ast.ControlDecl)
		if !ok {
			continue
		}
		inverse := roleInverse(info2, ctl)
		for _, l := range ctl.Locals {
			td, ok := l.(*ast.TableDecl)
			if !ok {
				continue
			}
			for _, keyPath := range fx.Keys[td.Name] {
				expr, err := keyExprFor(keyPath, inverse)
				if err != nil {
					continue
				}
				td.Keys = append(td.Keys, &ast.TableKey{Expr: expr, MatchKind: "exact"})
			}
		}
	}
	out := ast.Print(prog)
	if len(fx.Special) > 0 {
		out = "// bf4: " + strings.Join(fx.Special, "\n// bf4: ") + "\n" + out
	}
	return out, nil
}

// roleInverse maps canonical prefixes (hdr/meta/smeta) back to the
// control's parameter names.
func roleInverse(info *types.Info, ctl *ast.ControlDecl) map[string]string {
	inv := map[string]string{}
	var headersStruct, metaStruct *ast.StructDecl
	if info.Pipeline.Parser != nil {
		for _, p := range info.Pipeline.Parser.Params {
			if st, ok := info.ResolveType(p.Type).(*types.StructT); ok {
				switch {
				case st.Decl.Name == "standard_metadata_t":
				case p.Dir == "out":
					headersStruct = st.Decl
				case metaStruct == nil:
					metaStruct = st.Decl
				}
			}
		}
	}
	for _, p := range ctl.Params {
		st, ok := info.ResolveType(p.Type).(*types.StructT)
		if !ok {
			continue
		}
		switch {
		case st.Decl.Name == "standard_metadata_t":
			inv["smeta"] = p.Name
		case st.Decl == headersStruct:
			inv["hdr"] = p.Name
		case st.Decl == metaStruct:
			inv["meta"] = p.Name
		default:
			inv[p.Name] = p.Name
		}
	}
	return inv
}

// keyExprFor parses a canonical key path and rewrites its root to the
// control's parameter name.
func keyExprFor(path string, inverse map[string]string) (ast.Expr, error) {
	e, err := parser.ParseExpr(path)
	if err != nil {
		return nil, err
	}
	rewriteRoot(e, inverse)
	return e, nil
}

func rewriteRoot(e ast.Expr, inverse map[string]string) {
	switch x := e.(type) {
	case *ast.Ident:
		if repl, ok := inverse[x.Name]; ok {
			x.Name = repl
		}
	case *ast.Member:
		rewriteRoot(x.X, inverse)
	case *ast.IndexExpr:
		rewriteRoot(x.X, inverse)
	case *ast.CallExpr:
		rewriteRoot(x.Fun, inverse)
	}
}

// Summary renders a Table 1-style row.
func (r *Result) Summary() string {
	return fmt.Sprintf("%-24s LoC=%-5d bugs=%-3d afterInfer=%-3d afterFixes=%-3d keys=%-3d time=%s",
		r.Name, r.LoC, r.Bugs, r.BugsAfterInfer, r.BugsAfterFixes, r.KeysAdded,
		r.Runtime.Round(time.Millisecond))
}
