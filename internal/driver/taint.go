// Information-flow (taint) orchestration: compile with shadow-taint
// instrumentation, run the label dataflow pass, and hand every alarm to
// the solver for confirmation. The two halves see the same taint
// semantics — the dataflow pass abstractly executes the very shadow
// terms the solver decides — so a sink the dataflow clears needs no
// query, and a dataflow alarm the solver refutes is a genuinely
// infeasible flow, reported as dismissed.
package driver

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"bf4/internal/analysis"
	"bf4/internal/core"
	"bf4/internal/ir"
	"bf4/internal/obs"
	"bf4/internal/p4/parser"
	"bf4/internal/p4/types"
	"bf4/internal/smt/rewrite"
)

// TaintConfig selects options for a taint run.
type TaintConfig struct {
	// Policy picks the source set: "default" taints @sensitive-annotated
	// fields plus the built-in policy (ipv4/ipv6 source addresses);
	// "annot" taints annotated fields only.
	Policy string
	// Workers is the solver-confirmation fan-out; <= 0 means one.
	// Reports are byte-identical for every value.
	Workers int
	// Incremental/Rewrite mirror Config: persistent confirmation solver
	// with retractable scopes, and term-level simplification. Verdicts
	// are identical either way.
	Incremental bool
	Rewrite     bool
	// Obs/Trace attach observability (nil = off, zero overhead).
	Obs   *obs.Registry
	Trace *obs.Span
}

// DefaultTaintConfig matches lint's defaults: full policy, sequential
// confirmation, rewrite and incremental solving on.
func DefaultTaintConfig() TaintConfig {
	return TaintConfig{Policy: "default", Incremental: true, Rewrite: true}
}

// TaintReport is the result of one taint run.
type TaintReport struct {
	Name     string
	Pipeline *core.Pipeline
	Dataflow *analysis.TaintResult
	// Verdicts is parallel to Dataflow.Alarms.
	Verdicts []*core.LeakVerdict
	// Diags carries one diagnostic per alarm: confirmed leaks from
	// annotated sources are errors, confirmed policy-source leaks are
	// warnings, dismissed alarms are info.
	Diags []analysis.Diagnostic

	// Summary counts.
	Sinks           int // reachable instrumented sink checks
	StaticallyClean int // sinks the dataflow cleared without a query
	Alarms          int // sinks escalated to the solver
	Confirmed       int // alarms the solver confirmed (with a model)
	Dismissed       int // alarms the solver refuted (infeasible flow)

	DataflowIterations int
	Runtime            time.Duration
}

// Taint compiles a program with information-flow instrumentation and
// produces the confirmed/dismissed leak report. Frontend errors come
// back with name: prefixed (like Lint).
func Taint(name, src string, cfg TaintConfig) (*TaintReport, error) {
	start := time.Now()
	switch cfg.Policy {
	case "", "default":
		cfg.Policy = "default"
	case "annot":
	default:
		return nil, fmt.Errorf("taint: policy must be default or annot, got %q", cfg.Policy)
	}

	prog, err := parser.ParseFile(name, src)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, parser.PrefixFile(name, err)
	}
	opts := ir.DefaultOptions()
	opts.CheckInfoFlow = true
	opts.TaintDefaultPolicy = cfg.Policy == "default"

	compileSp, compileDone := obs.StartPhase(cfg.Obs, cfg.Trace, "compile")
	pl, err := core.CompileCheckedObs(src, prog, info, opts, true, start, cfg.Obs, compileSp)
	compileDone()
	if err != nil {
		return nil, parser.PrefixFile(name, err)
	}
	if cfg.Rewrite {
		pl.IR.F.SetSimplifyProvider(rewrite.Provider(pl.IR.F))
	}

	_, dfDone := obs.StartPhase(cfg.Obs, cfg.Trace, "taint-dataflow")
	df := analysis.RunTaint(pl.IR)
	dfDone()

	alarmNodes := make([]*ir.Node, len(df.Alarms))
	for i, a := range df.Alarms {
		alarmNodes[i] = a.Node
	}
	verdicts, _ := pl.ConfirmLeaks(alarmNodes, core.ConfirmOptions{
		Workers:     cfg.Workers,
		Incremental: cfg.Incremental,
		Obs:         cfg.Obs,
		Trace:       cfg.Trace,
	})

	rep := &TaintReport{
		Name:               name,
		Pipeline:           pl,
		Dataflow:           df,
		Verdicts:           verdicts,
		Sinks:              df.Sinks,
		StaticallyClean:    df.StaticallyClean,
		Alarms:             len(df.Alarms),
		DataflowIterations: df.Iterations,
	}
	for i, a := range df.Alarms {
		v := verdicts[i]
		if v.Confirmed {
			rep.Confirmed++
		} else {
			rep.Dismissed++
		}
		rep.Diags = append(rep.Diags, taintDiag(pl.IR, a, v))
	}
	rep.Diags = analysis.SortAndDedupe(rep.Diags)

	if cfg.Obs != nil {
		cfg.Obs.Counter("bf4_taint_sinks_total").Add(int64(rep.Sinks))
		cfg.Obs.Counter("bf4_taint_static_clean_total").Add(int64(rep.StaticallyClean))
		cfg.Obs.Counter("bf4_taint_alarms_total").Add(int64(rep.Alarms))
		cfg.Obs.Counter("bf4_taint_confirmed_total").Add(int64(rep.Confirmed))
		cfg.Obs.Counter("bf4_taint_dismissed_total").Add(int64(rep.Dismissed))
	}
	rep.Runtime = time.Since(start)
	return rep, nil
}

// taintDiag renders one alarm + verdict as a diagnostic. Severity
// follows the source's origin: a confirmed leak of an @sensitive-
// annotated field is an error (the programmer declared the secret), a
// confirmed leak under the built-in default policy is a warning, and a
// dismissed alarm is informational (the dataflow over-approximation
// fired but the solver proved the flow infeasible).
func taintDiag(p *ir.Program, a *analysis.TaintAlarm, v *core.LeakVerdict) analysis.Diagnostic {
	pos := analysis.FallbackPos(a.Node)
	origin := "default policy"
	sev := analysis.SevWarning
	if ss := p.Sensitive[a.Source]; ss != nil && ss.Origin == "annot" {
		origin = "@sensitive annotation"
		sev = analysis.SevError
	}
	d := analysis.Diagnostic{
		Pass:    "info-flow",
		Line:    pos.Line,
		Col:     pos.Col,
		Witness: strings.Join(a.Witness, " -> "),
	}
	if v.Confirmed {
		d.Severity = sev
		d.Msg = fmt.Sprintf("confirmed leak: %s (source %s, %s)", a.Node.Comment, a.Source, origin)
	} else {
		d.Severity = analysis.SevInfo
		d.Msg = fmt.Sprintf("dismissed (flow infeasible): %s (source %s, %s)", a.Node.Comment, a.Source, origin)
	}
	return d
}

// summaryLine is the stable one-line taint summary appended to both
// renderings.
func (r *TaintReport) summaryLine() string {
	return fmt.Sprintf("taint: %d alarm(s), %d confirmed, %d dismissed, %d statically clean, %d sink check(s)",
		r.Alarms, r.Confirmed, r.Dismissed, r.StaticallyClean, r.Sinks)
}

// RenderText renders the taint report like lint output, with the taint
// summary line appended after the diagnostic count.
func (r *TaintReport) RenderText(file string) string {
	return analysis.RenderText(file, r.Diags) + r.summaryLine() + "\n"
}

// taintJSON is the machine-readable taint report schema: the lint
// schema plus a "taint" summary object.
type taintJSON struct {
	Schema      string                `json:"schema"`
	File        string                `json:"file"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
	Errors      int                   `json:"errors"`
	Warnings    int                   `json:"warnings"`
	TaintObj    struct {
		Alarms          int `json:"alarms"`
		Confirmed       int `json:"confirmed"`
		Dismissed       int `json:"dismissed"`
		StaticallyClean int `json:"statically_clean"`
		Sinks           int `json:"sinks"`
	} `json:"taint"`
}

// RenderJSON renders the taint report as stable, indented JSON.
func (r *TaintReport) RenderJSON(file string) ([]byte, error) {
	rep := taintJSON{Schema: analysis.SchemaVersion, File: file, Diagnostics: r.Diags}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []analysis.Diagnostic{}
	}
	for _, d := range r.Diags {
		switch d.Severity {
		case analysis.SevError:
			rep.Errors++
		case analysis.SevWarning:
			rep.Warnings++
		}
	}
	rep.TaintObj.Alarms = r.Alarms
	rep.TaintObj.Confirmed = r.Confirmed
	rep.TaintObj.Dismissed = r.Dismissed
	rep.TaintObj.StaticallyClean = r.StaticallyClean
	rep.TaintObj.Sinks = r.Sinks
	return json.MarshalIndent(rep, "", "  ")
}
