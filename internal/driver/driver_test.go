package driver

import (
	"strings"
	"testing"
)

const natSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<1> do_forward; bit<32> nhop; }
struct metadata { meta_t meta; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action drop_() { mark_to_drop(smeta); }
    action nat_hit(bit<32> a) {
        meta.meta.do_forward = 1w1;
        meta.meta.nhop = a;
    }
    table nat {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
        actions = { drop_; nat_hit; }
        default_action = drop_();
    }
    action set_nhop(bit<32> nhop, bit<9> port) {
        meta.meta.nhop = nhop;
        smeta.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = { meta.meta.nhop: lpm; }
        actions = { set_nhop; drop_; }
    }
    apply {
        nat.apply();
        if (meta.meta.do_forward == 1w1) {
            ipv4_lpm.apply();
        }
    }
}

control Eg(inout headers hdr, inout metadata meta,
           inout standard_metadata_t smeta) { apply { } }
control Dep(packet_out pkt, in headers hdr) { apply { pkt.emit(hdr.ipv4); } }

V1Switch(P(), Ing(), Eg(), Dep()) main;
`

func TestFullLoopOnNAT(t *testing.T) {
	res, err := Run("simple_nat", natSrc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Summary())
	if res.Bugs == 0 {
		t.Fatal("no bugs found")
	}
	if res.BugsAfterInfer >= res.Bugs {
		t.Fatalf("Infer controlled nothing: %d -> %d", res.Bugs, res.BugsAfterInfer)
	}
	if res.KeysAdded == 0 {
		t.Fatal("Fixes proposed no keys (expected hdr.ipv4.isValid() on ipv4_lpm)")
	}
	found := false
	for _, k := range res.Fixes.Keys["ipv4_lpm"] {
		if k == "hdr.ipv4.isValid()" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected validity key on ipv4_lpm, got %v", res.Fixes.Keys)
	}
	if res.BugsAfterFixes != 0 {
		for _, b := range res.Dataplane {
			t.Logf("remaining: %s", b.Description())
		}
		t.Fatalf("bugs after fixes = %d, want 0", res.BugsAfterFixes)
	}
}

func TestFixedSourceReparses(t *testing.T) {
	res, err := Run("simple_nat", natSrc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.FixedSource == "" {
		t.Fatal("no fixed source produced")
	}
	if !strings.Contains(res.FixedSource, "isValid()") {
		t.Fatalf("fixed source lacks the added key:\n%s", res.FixedSource)
	}
	// The fixed source must itself pass the full loop with zero keys
	// proposed beyond what's there (idempotence of the fix).
	res2, err := Run("simple_nat_fixed", res.FixedSource, DefaultConfig())
	if err != nil {
		t.Fatalf("fixed source does not compile: %v", err)
	}
	if got := res2.Fixes.Keys["ipv4_lpm"]; len(got) > 0 {
		t.Fatalf("fixed program still wants keys on ipv4_lpm: %v", got)
	}
	// Re-verifying the rewritten program must come out clean: the keys are
	// now in the source, so inference controls every bug without new keys.
	// (The egress-spec suggestion is advisory, not a source rewrite, so it
	// may legitimately reappear.)
	if res2.KeysAdded != 0 || res2.BugsAfterFixes != 0 {
		t.Fatalf("fixed source does not re-verify clean: %s", res2.Summary())
	}
}

// twoRoundSrc needs two fix-point rounds. Round 0: t1's wr action reads
// hdr.a.f as a register index (a is conditionally parsed), so Fixes
// proposes hdr.a.f (the OOB bug's determining variable) and
// hdr.a.isValid() (the invalid-read bug) on t1. Meanwhile t2's read of
// hdr.b.g is controlled WITHOUT keys by the multi-table heuristic: t1
// dominates t2, shares the meta.m key, and b is valid unless t1 hit the
// nop_ entry — forbidding (e1.act = nop_, e2.act = rd) rule pairs
// suffices. Round 1's rebuild gives t1 two extra keys, which breaks the
// keys-subset condition of the heuristic, so t2's bug resurfaces
// uncontrolled and only then does Fixes propose hdr.b.isValid() on t2 —
// a second round. Round 2 re-verifies clean.
const twoRoundSrc = `
header a_t { bit<8> f; }
header b_t { bit<8> g; }
struct headers { a_t a; b_t b; }
struct metadata { bit<8> m; bit<8> x; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w1: parse_a;
            default: accept;
        }
    }
    state parse_a { pkt.extract(hdr.a); transition accept; }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    register<bit<8>>(16) reg;
    action nop_() { }
    action init_() {
        hdr.b.setValid();
        hdr.b.g = 8w0;
    }
    action wr() {
        hdr.b.setValid();
        hdr.b.g = 8w0;
        reg.write(hdr.a.f, 8w1);
    }
    action rd() { meta.x = hdr.b.g; }
    table t1 {
        key = { meta.m: exact; }
        actions = { wr; nop_; }
        default_action = init_();
    }
    table t2 {
        key = { meta.m: exact; }
        actions = { rd; nop_; }
        default_action = nop_();
    }
    apply {
        smeta.egress_spec = 9w1;
        t1.apply();
        t2.apply();
    }
}

control Eg(inout headers hdr, inout metadata meta,
           inout standard_metadata_t smeta) { apply { } }
control Dep(packet_out pkt, in headers hdr) {
    apply { pkt.emit(hdr.a); pkt.emit(hdr.b); }
}

V1Switch(P(), Ing(), Eg(), Dep()) main;
`

func TestFixPointNeedsTwoRounds(t *testing.T) {
	res, err := Run("two_round", twoRoundSrc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Summary())
	t.Logf("fixes:\n%s", res.Fixes.Describe())
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d, want >= 2 (keys per round: %v)", res.Rounds, res.Fixes.Keys)
	}
	wantT1 := map[string]bool{"hdr.a.f": true, "hdr.a.isValid()": true}
	for _, k := range res.Fixes.Keys["t1"] {
		delete(wantT1, k)
	}
	if len(wantT1) > 0 {
		t.Errorf("t1 missing proposed keys %v (got %v)", wantT1, res.Fixes.Keys["t1"])
	}
	found := false
	for _, k := range res.Fixes.Keys["t2"] {
		if k == "hdr.b.isValid()" {
			found = true
		}
	}
	if !found {
		t.Errorf("t2 never got hdr.b.isValid() (got %v)", res.Fixes.Keys["t2"])
	}
	if res.BugsAfterFixes != 0 {
		for _, b := range res.Dataplane {
			t.Logf("remaining: %s", b.Description())
		}
		t.Errorf("bugs after fixes = %d, want 0", res.BugsAfterFixes)
	}
	// The two-round fix must survive the source rewrite round-trip.
	if res.FixedSource == "" {
		t.Fatal("no fixed source produced")
	}
	res2, err := Run("two_round_fixed", res.FixedSource, DefaultConfig())
	if err != nil {
		t.Fatalf("fixed source does not compile: %v", err)
	}
	if res2.KeysAdded != 0 || res2.BugsAfterFixes != 0 {
		t.Fatalf("fixed source does not re-verify clean: %s", res2.Summary())
	}
}

func TestFixPointEarlyExitOnDataplaneBug(t *testing.T) {
	// One fixable bug (t's rd reads conditionally-parsed hdr.h) plus one
	// genuinely unfixable bug (the apply block reads conditionally-parsed
	// hdr.g outside any table's expansion). The loop must run exactly one
	// round: the fix controls t's bug, no new keys appear for the
	// dataplane bug, and the newKeys == 0 early exit fires well before
	// maxRounds.
	src := `
header h_t { bit<8> x; }
header g_t { bit<8> y; }
struct headers { h_t h; g_t g; }
struct metadata { bit<8> m; bit<8> x; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w1: parse_h;
            9w2: parse_g;
            default: accept;
        }
    }
    state parse_h { pkt.extract(hdr.h); transition accept; }
    state parse_g { pkt.extract(hdr.g); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action nop_() { }
    action rd() { meta.x = hdr.h.x; }
    table t {
        key = { meta.m: exact; }
        actions = { rd; nop_; }
        default_action = nop_();
    }
    apply {
        smeta.egress_spec = 9w1;
        t.apply();
        if (hdr.g.y == 8w1) {
            smeta.egress_spec = 9w2;
        }
    }
}
control Eg(inout headers hdr, inout metadata meta,
           inout standard_metadata_t smeta) { apply { } }
control Dep(packet_out pkt, in headers hdr) {
    apply { pkt.emit(hdr.h); pkt.emit(hdr.g); }
}
V1Switch(P(), Ing(), Eg(), Dep()) main;
`
	res, err := Run("early_exit", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Summary())
	if res.KeysAdded == 0 {
		t.Fatal("fixable bug proposed no keys")
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want exactly 1 (newKeys == 0 early exit)", res.Rounds)
	}
	if res.BugsAfterFixes == 0 {
		t.Fatal("dataplane bug wrongly eliminated")
	}
}

func TestDataplaneBugSurvivesFixes(t *testing.T) {
	// mplb_router-style bug: reading a header inside an if condition with
	// no prior table able to rescue it — must be reported as a dataplane
	// bug after fixes.
	src := `
header tcp_t { bit<16> srcPort; bit<16> dstPort; }
struct headers { tcp_t tcp; }
struct metadata { bit<1> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w1: parse_tcp;
            default: accept;
        }
    }
    state parse_tcp { pkt.extract(hdr.tcp); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply {
        smeta.egress_spec = 9w1;
        if (hdr.tcp.dstPort == 16w80) {
            smeta.egress_spec = 9w2;
        }
    }
}
V1Switch(P(), Ing()) main;
`
	res, err := Run("mplb_like", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bugs == 0 {
		t.Fatal("tcp read bug not found")
	}
	if res.BugsAfterFixes == 0 {
		t.Fatal("dataplane bug wrongly eliminated (no table can control it)")
	}
}

func TestEgressSpecSpecialFix(t *testing.T) {
	src := `
header h_t { bit<8> x; }
struct headers { h_t h; }
struct metadata { bit<1> m; bit<8> m2; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action setm(bit<8> v) { meta.m2 = v; }
    table t {
        key = { hdr.h.x: exact; }
        actions = { setm; }
        default_action = setm(8w0);
    }
    apply {
        t.apply();
        if (meta.m2 == 8w1) {
            smeta.egress_spec = 9w1;
        }
    }
}
V1Switch(P(), Ing()) main;
`
	res, err := Run("egress_spec", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bugs == 0 {
		t.Fatal("egress-spec bug not found")
	}
	if len(res.Fixes.Special) == 0 {
		t.Fatal("no special suggestion for egress-spec bug")
	}
	if res.BugsAfterFixes != 0 {
		for _, b := range res.Dataplane {
			t.Logf("remaining: %s", b.Description())
		}
		t.Fatalf("egress-spec special fix did not eliminate the bug: %d remain", res.BugsAfterFixes)
	}
}

func TestCleanProgramNeedsNothing(t *testing.T) {
	src := `
header h_t { bit<8> x; }
struct headers { h_t h; }
struct metadata { bit<1> m; }
parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start { pkt.extract(hdr.h); transition accept; }
}
control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply {
        smeta.egress_spec = 9w1;
        if (hdr.h.isValid()) {
            hdr.h.x = 8w5;
        }
    }
}
V1Switch(P(), Ing()) main;
`
	res, err := Run("clean", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bugs != 0 || res.KeysAdded != 0 || res.BugsAfterFixes != 0 {
		t.Fatalf("clean program reported: %s", res.Summary())
	}
}
