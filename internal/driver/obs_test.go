package driver

import (
	"bytes"
	"testing"

	"bf4/internal/obs"
	"bf4/internal/progs"
	"bf4/internal/spec"
)

// runWithObs runs the full loop and returns the result together with the
// marshaled spec file (annotations + schemas) — the externally visible
// artifact the shim consumes.
func runWithObs(t *testing.T, name, src string, reg *obs.Registry, tr *obs.Span) (*Result, []byte) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Obs = reg
	cfg.Trace = tr
	res, err := Run(name, src, cfg)
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	pl := res.Fixed
	if pl == nil {
		pl = res.Initial
	}
	file := spec.Build(name, pl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)
	data, err := file.Marshal()
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	return res, data
}

// TestObservabilityPreservesVerdicts is the observability contract: with
// a registry and trace attached, every externally visible artifact —
// bug counts, inferred annotations, fixed source, the marshaled spec —
// is byte-identical to a plain run. Instrumentation only reads clocks
// and bumps counters; it must never perturb solver state or iteration
// order.
func TestObservabilityPreservesVerdicts(t *testing.T) {
	for _, name := range []string{"simple_nat", "heavy_hitter_2", "linearroad_16", "mplb_router-ppc"} {
		p := progs.Get(name)
		if p == nil {
			t.Fatalf("missing corpus program %s", name)
		}
		t.Run(name, func(t *testing.T) {
			plain, plainSpec := runWithObs(t, p.Name, p.Source, nil, nil)

			reg := obs.NewRegistry()
			root := obs.StartSpan(p.Name)
			observed, obsSpec := runWithObs(t, p.Name, p.Source, reg, root)
			root.End()

			if plain.Bugs != observed.Bugs ||
				plain.BugsAfterInfer != observed.BugsAfterInfer ||
				plain.BugsAfterFixes != observed.BugsAfterFixes ||
				plain.KeysAdded != observed.KeysAdded ||
				plain.TablesTouched != observed.TablesTouched ||
				plain.Rounds != observed.Rounds {
				t.Errorf("verdicts differ with obs on:\nplain    %s\nobserved %s",
					plain.Summary(), observed.Summary())
			}
			if plain.FixedSource != observed.FixedSource {
				t.Error("fixed source differs with obs on")
			}
			if !bytes.Equal(plainSpec, obsSpec) {
				t.Error("marshaled spec differs with obs on")
			}

			// And the run must actually have been observed.
			if reg.CounterValue("bf4_solver_checks_total") == 0 {
				t.Error("no solver checks recorded")
			}
			if reg.CounterValue("bf4_phase_findbugs_ns_total") == 0 {
				t.Error("no findbugs phase time recorded")
			}
			if len(root.Children()) == 0 {
				t.Error("trace tree is empty")
			}
			if root.Duration() <= 0 {
				t.Error("root span has no duration")
			}
		})
	}
}
