package driver

import (
	"strings"
	"testing"
)

// TestRewriteSourceRoleInversion: the fixed-source rewriter must express
// synthesized keys in each control's own parameter names, not the
// verifier's canonical hdr/meta/smeta roles.
func TestRewriteSourceRoleInversion(t *testing.T) {
	src := `
header ipv4_t { bit<8> ttl; bit<32> dst; }
struct user_meta { bit<32> nh; }
struct parsed_headers { ipv4_t ipv4; }

parser TheParser(packet_in b, out parsed_headers ph, inout user_meta um,
                 inout standard_metadata_t sm) {
    state start {
        transition select(sm.ingress_port) {
            9w1: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { b.extract(ph.ipv4); transition accept; }
}

control TheIngress(inout parsed_headers headers_, inout user_meta md,
                   inout standard_metadata_t sm) {
    action drop_() { mark_to_drop(sm); }
    action fwd(bit<9> p) {
        headers_.ipv4.ttl = headers_.ipv4.ttl - 8w1;
        sm.egress_spec = p;
    }
    table route {
        key = { md.nh: exact; }
        actions = { fwd; drop_; }
        default_action = drop_();
    }
    apply { route.apply(); }
}
V1Switch(TheParser(), TheIngress()) main;
`
	res, err := Run("renamed", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.KeysAdded == 0 {
		t.Fatal("expected a validity key on route")
	}
	if res.FixedSource == "" {
		t.Fatal("no fixed source")
	}
	// The ingress names its headers parameter "headers_": the synthesized
	// key must use that name.
	if !strings.Contains(res.FixedSource, "headers_.ipv4.isValid(): exact;") {
		t.Fatalf("fixed source does not use the control's parameter name:\n%s", res.FixedSource)
	}
	if strings.Contains(res.FixedSource, "hdr.ipv4.isValid()") {
		t.Fatal("canonical role name leaked into the fixed source")
	}
	// And it must verify clean when re-run.
	res2, err := Run("renamed_fixed", res.FixedSource, DefaultConfig())
	if err != nil {
		t.Fatalf("fixed source broken: %v", err)
	}
	if res2.BugsAfterFixes != 0 {
		t.Fatalf("fixed source still buggy: %s", res2.Summary())
	}
}
