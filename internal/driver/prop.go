// Property-DSL orchestration: gather @assert/@assume properties from
// source comments and .props spec files, compile them into the program
// through the ir instrumentation hook, pre-discharge what the dataflow
// layer can prove, and adjudicate the rest with the solver — confirming
// each violation with a deterministic packet witness or dismissing it as
// infeasible. The three verdict tiers mirror the built-in checks'
// economics: discharged properties cost no solver time, dismissed ones
// cost one unsat query, confirmed ones additionally get a canonical
// model replayed on the concrete interpreter.
package driver

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"bf4/internal/analysis"
	"bf4/internal/core"
	"bf4/internal/dataplane"
	"bf4/internal/ir"
	"bf4/internal/obs"
	"bf4/internal/p4/parser"
	"bf4/internal/p4/types"
	"bf4/internal/prop"
	"bf4/internal/smt/rewrite"
	"bf4/internal/solver"
)

// PropConfig selects options for a property run.
type PropConfig struct {
	// Workers is the solver-confirmation fan-out; <= 0 means one.
	// Reports are byte-identical for every value.
	Workers int
	// Incremental/Rewrite mirror Config. Verdicts and witnesses are
	// identical either way: witnesses come from a separate canonical
	// solver pass, not from the (mode-dependent) confirmation models.
	Incremental bool
	Rewrite     bool
	// Obs/Trace attach observability (nil = off, zero overhead).
	Obs   *obs.Registry
	Trace *obs.Span
}

// DefaultPropConfig matches lint's defaults: sequential confirmation,
// rewrite and incremental solving on.
func DefaultPropConfig() PropConfig {
	return PropConfig{Incremental: true, Rewrite: true}
}

// PropReport is the result of one property run.
type PropReport struct {
	Name       string
	Pipeline   *core.Pipeline
	Properties []*prop.Property
	Diags      []analysis.Diagnostic

	// Summary counts. Checks can exceed the number of asserts when an
	// @after table has several apply instances (one check per instance).
	Props      int // properties gathered (asserts + assumes)
	Assumes    int // @assume constraints spliced
	Checks     int // assert check nodes spliced
	Discharged int // checks proven to hold statically (no solver query)
	Confirmed  int // checks the solver violated (with a packet witness)
	Dismissed  int // checks the solver proved to hold (violation infeasible)

	Runtime time.Duration
}

// Props compiles a program with its properties (source-comment
// annotations plus any extra properties, e.g. from .props spec files)
// and produces the confirmed/dismissed/discharged report. Frontend and
// property type errors come back with positions attached.
func Props(name, src string, extra []*prop.Property, cfg PropConfig) (*PropReport, error) {
	start := time.Now()
	prog, err := parser.ParseFile(name, src)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, parser.PrefixFile(name, err)
	}

	props, err := prop.ExtractSource(name, src)
	if err != nil {
		return nil, err
	}
	props = append(props, extra...)
	prop.Sort(props)

	opts := ir.DefaultOptions()
	opts.Instrument = prop.Instrumenter(props)

	compileSp, compileDone := obs.StartPhase(cfg.Obs, cfg.Trace, "compile")
	pl, err := core.CompileCheckedObs(src, prog, info, opts, true, start, cfg.Obs, compileSp)
	compileDone()
	if err != nil {
		return nil, parser.PrefixFile(name, err)
	}
	if cfg.Rewrite {
		pl.IR.F.SetSimplifyProvider(rewrite.Provider(pl.IR.F))
	}

	rep := &PropReport{Name: name, Pipeline: pl, Properties: props, Props: len(props)}
	byOrigin := map[string]*prop.Property{}
	for _, pr := range props {
		if pr.Kind == prop.Assume {
			rep.Assumes++
		}
		byOrigin[pr.Origin()] = pr
	}

	// The static tier: dataflow facts (constant propagation, validity)
	// plus plain CFG reachability retire every check they can prove.
	_, anDone := obs.StartPhase(cfg.Obs, cfg.Trace, "prop-analysis")
	ar := analysis.Run(pl.IR, nil)
	reach := pl.IR.Reachable()
	anDone()

	var nodes []*ir.Node
	for _, bn := range pl.IR.Bugs {
		if bn.Bug == ir.BugAssertFail {
			nodes = append(nodes, bn)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	rep.Checks = len(nodes)

	var candidates []*ir.Node
	static := map[*ir.Node]bool{}
	for _, bn := range nodes {
		if !reach[bn] || ar.Discharge[bn] {
			static[bn] = true
			continue
		}
		candidates = append(candidates, bn)
	}

	// The solver tier adjudicates the remainder through the standard wp
	// reachability conditions.
	verdicts, _ := pl.ConfirmNodes(candidates, core.ConfirmOptions{
		Workers:     cfg.Workers,
		Incremental: cfg.Incremental,
		Obs:         cfg.Obs,
		Trace:       cfg.Trace,
	}, "confirm-props")
	verdictOf := map[*ir.Node]*core.CheckVerdict{}
	for _, v := range verdicts {
		verdictOf[v.Node] = v
	}

	for _, bn := range nodes {
		pr := byOrigin[originOf(bn)]
		switch {
		case static[bn]:
			rep.Discharged++
			rep.Diags = append(rep.Diags, propDiag(bn, pr, "discharged", ""))
		case verdictOf[bn].Discharged:
			// Condition folded to false without a query — same static
			// guarantee, found one layer later.
			rep.Discharged++
			rep.Diags = append(rep.Diags, propDiag(bn, pr, "discharged", ""))
		case verdictOf[bn].Confirmed:
			rep.Confirmed++
			rep.Diags = append(rep.Diags, propDiag(bn, pr, "confirmed", canonicalWitness(pl, bn, pr)))
		default:
			rep.Dismissed++
			rep.Diags = append(rep.Diags, propDiag(bn, pr, "dismissed", ""))
		}
	}
	rep.Diags = analysis.SortAndDedupe(rep.Diags)

	if cfg.Obs != nil {
		cfg.Obs.Counter("bf4_prop_checks_total").Add(int64(rep.Checks))
		cfg.Obs.Counter("bf4_prop_discharged_total").Add(int64(rep.Discharged))
		cfg.Obs.Counter("bf4_prop_confirmed_total").Add(int64(rep.Confirmed))
		cfg.Obs.Counter("bf4_prop_dismissed_total").Add(int64(rep.Dismissed))
	}
	rep.Runtime = time.Since(start)
	return rep, nil
}

func originOf(bn *ir.Node) string {
	if bn.Prop == nil {
		return ""
	}
	return bn.Prop.Origin
}

// canonicalWitness derives the packet witness reported for a confirmed
// violation. The confirmation phase's models depend on worker count and
// solver mode, so the report never uses them: a fresh plain solver
// re-solves the check's reachability condition sequentially (the term is
// fixed at compile time, so the model is reproducible), and the model is
// replayed on the concrete interpreter to read off the fields the
// property mentions.
func canonicalWitness(pl *core.Pipeline, bn *ir.Node, pr *prop.Property) string {
	cond := pl.Reach.Cond[bn]
	if cond == nil {
		return ""
	}
	s := solver.New(pl.IR.F)
	if s.Check(cond) != solver.Sat {
		return ""
	}
	interp := &dataplane.Interp{P: pl.IR, Model: s.Model(), Pass: pl.Pass}
	tr, err := interp.Run()
	if err != nil || tr.Terminal != bn {
		return ""
	}
	names := []string{"smeta.ingress_port"}
	if pr != nil {
		names = append(names, prop.DataVars(pr.Expr)...)
	}
	sort.Strings(names)
	var parts []string
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		if v, ok := tr.State[name]; ok && v != nil {
			parts = append(parts, fmt.Sprintf("%s=%v", display(name), v))
		}
	}
	return strings.Join(parts, " ")
}

// display maps internal variable names back to source-level spelling.
func display(name string) string {
	name = strings.TrimSuffix(name, ".$valid")
	if rest, ok := strings.CutPrefix(name, "smeta."); ok {
		return "standard_metadata." + rest
	}
	return name
}

// propDiag renders one property check verdict as a diagnostic.
// Source-comment properties anchor to their P4 position; spec-file
// properties keep their origin in the message (anchoring them to the P4
// file would point at nothing).
func propDiag(bn *ir.Node, pr *prop.Property, status, witness string) analysis.Diagnostic {
	info := bn.Prop
	d := analysis.Diagnostic{Pass: "prop", Witness: witness}
	text := bn.Comment
	origin := ""
	if info != nil {
		text = fmt.Sprintf("assert (%s)", info.Text)
		if info.FromSource {
			d.Line = info.Line
			d.Col = info.Col
		} else {
			origin = fmt.Sprintf(" [%s]", info.Origin)
		}
	}
	switch status {
	case "confirmed":
		d.Severity = analysis.SevError
		d.Msg = fmt.Sprintf("property violated: %s%s", text, origin)
	case "dismissed":
		d.Severity = analysis.SevInfo
		d.Msg = fmt.Sprintf("property holds: %s — violation infeasible (solver)%s", text, origin)
	default:
		d.Severity = analysis.SevInfo
		d.Msg = fmt.Sprintf("property holds: %s — discharged statically%s", text, origin)
	}
	return d
}

// summaryLine is the stable one-line property summary appended to both
// renderings.
func (r *PropReport) summaryLine() string {
	return fmt.Sprintf("props: %d propert%s, %d check(s), %d confirmed, %d dismissed, %d discharged, %d assume(s)",
		r.Props, plural(r.Props, "y", "ies"), r.Checks, r.Confirmed, r.Dismissed, r.Discharged, r.Assumes)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// RenderText renders the property report like lint output, with the
// property summary line appended after the diagnostic count.
func (r *PropReport) RenderText(file string) string {
	return analysis.RenderText(file, r.Diags) + r.summaryLine() + "\n"
}

// propJSON is the machine-readable property report schema: the lint
// schema plus a "props" summary object.
type propJSON struct {
	Schema      string                `json:"schema"`
	File        string                `json:"file"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
	Errors      int                   `json:"errors"`
	Warnings    int                   `json:"warnings"`
	PropsObj    struct {
		Properties int `json:"properties"`
		Checks     int `json:"checks"`
		Confirmed  int `json:"confirmed"`
		Dismissed  int `json:"dismissed"`
		Discharged int `json:"discharged"`
		Assumes    int `json:"assumes"`
	} `json:"props"`
}

// RenderJSON renders the property report as stable, indented JSON.
func (r *PropReport) RenderJSON(file string) ([]byte, error) {
	rep := propJSON{Schema: analysis.SchemaVersion, File: file, Diagnostics: r.Diags}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []analysis.Diagnostic{}
	}
	for _, d := range r.Diags {
		switch d.Severity {
		case analysis.SevError:
			rep.Errors++
		case analysis.SevWarning:
			rep.Warnings++
		}
	}
	rep.PropsObj.Properties = r.Props
	rep.PropsObj.Checks = r.Checks
	rep.PropsObj.Confirmed = r.Confirmed
	rep.PropsObj.Dismissed = r.Dismissed
	rep.PropsObj.Discharged = r.Discharged
	rep.PropsObj.Assumes = r.Assumes
	return json.MarshalIndent(rep, "", "  ")
}
