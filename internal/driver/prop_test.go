package driver

import (
	"strings"
	"testing"

	"bf4/internal/ir"
	"bf4/internal/progs"
	"bf4/internal/prop"
)

// propRunFixture generates the prop-exercise switch and parses its spec.
func propRunFixture(t *testing.T) (src string, props []*prop.Property) {
	t.Helper()
	src, spec := progs.GeneratePropSwitch(2, 1)
	props, err := prop.ParseSpecFile("propswitch.props", []byte(spec))
	if err != nil {
		t.Fatalf("parse generated spec: %v", err)
	}
	return src, props
}

// TestPropsTypecheckErrors: a property referencing something the program
// doesn't have must fail the run with a positioned error, not silently
// verify nothing.
func TestPropsTypecheckErrors(t *testing.T) {
	src, _ := propRunFixture(t)
	cases := []struct{ line, frag string }{
		{"@assert(hdr.nosuch.field == 1)", "hdr.nosuch.field"},
		{"@assert @after(nosuch) (meta.m.guard == 8w7)", "nosuch"},
		{"@assert(hit(nosuch))", "nosuch"},
		{"@assert(action_run(classify_0) == not_an_action)", "not_an_action"},
		{"@assert(meta.m.guard)", "bool"},
		{"@assert(meta.m.guard == meta.m.scratch)", "width"},
		{"@assert(1 == 2)", "width"},
	}
	for _, c := range cases {
		props, err := prop.ParseSpecFile("bad.props", []byte(c.line))
		if err != nil {
			t.Fatalf("ParseSpecFile(%q): unexpected parse error: %v", c.line, err)
		}
		_, err = Props("propswitch.p4", src, props, DefaultPropConfig())
		if err == nil {
			t.Errorf("Props with %q: expected typecheck error", c.line)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Props with %q: error %q does not mention %q", c.line, err, c.frag)
		}
		if !strings.Contains(err.Error(), "bad.props:1:") {
			t.Errorf("Props with %q: error %q lacks the declaration position", c.line, err)
		}
	}
}

// TestPropsAssertInferLoop runs the full verify→infer loop (`bf4
// -check=assert`) on the generated family and pins the inference
// boundary: the action-selection property is violated under arbitrary
// entries but controlled by the inferred annotations, the action-data
// (egress_spec) property stays a dataplane bug, and the gadget/guard
// asserts are unreachable outright.
func TestPropsAssertInferLoop(t *testing.T) {
	src, props := propRunFixture(t)
	cfg := DefaultConfig()
	cfg.IR.Instrument = prop.Instrumenter(props)
	res, err := Run("propswitch.p4", src, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	checked := map[string]*struct {
		reachable, controlled bool
	}{}
	for _, b := range res.InitialRep.Bugs {
		if b.Kind != ir.BugAssertFail || b.Node.Prop == nil {
			continue
		}
		st := &struct{ reachable, controlled bool }{b.Reachable, res.InferResult.Controlled[b.Node]}
		checked[b.Node.Prop.Text] = st
	}
	if len(checked) != 4 {
		t.Fatalf("got %d distinct assert properties, want 4: %v", len(checked), checked)
	}

	want := map[string]struct{ reachable, controlled bool }{
		"standard_metadata.egress_spec != 9w0":               {true, false},
		"hit(classify_0) -> action_run(classify_0) != drop_": {true, true},
		"meta.m.flag != 8w1":                                 {false, false},
		"meta.m.guard == 8w7":                                {false, false},
	}
	for text, w := range want {
		got, ok := checked[text]
		if !ok {
			t.Errorf("property %q missing from the report", text)
			continue
		}
		if got.reachable != w.reachable || got.controlled != w.controlled {
			t.Errorf("property %q: reachable=%v controlled=%v, want reachable=%v controlled=%v",
				text, got.reachable, got.controlled, w.reachable, w.controlled)
		}
	}
}
