package driver_test

import (
	"fmt"
	"strings"
	"testing"

	"bf4/internal/driver"
	"bf4/internal/spec"
)

// guardSrc is a program every one of whose instrumented checks the
// static analysis can discharge: the parser always extracts ethernet,
// the only header access is guarded by isValid(), the deparser emit is
// likewise guarded, and egress_spec is set unconditionally. With the
// pre-pass on, the solver should see strictly fewer queries — and the
// verdicts must not move at all.
const guardSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
struct metadata { }
struct headers { ethernet_t ethernet; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition accept;
    }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    apply {
        if (hdr.ethernet.isValid()) {
            hdr.ethernet.dst = 48w1;
        }
        smeta.egress_spec = 9w1;
    }
}

control Eg(inout headers hdr, inout metadata meta,
           inout standard_metadata_t smeta) { apply { } }
control Dep(packet_out pkt, in headers hdr) { apply { pkt.emit(hdr.ethernet); } }

V1Switch(P(), Ing(), Eg(), Dep()) main;
`

// fingerprint captures everything verification-relevant about a run so
// two results can be compared byte-for-byte.
func fingerprint(res *driver.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bugs=%d afterInfer=%d afterFixes=%d keys=%d tables=%d rounds=%d\n",
		res.Bugs, res.BugsAfterInfer, res.BugsAfterFixes, res.KeysAdded, res.TablesTouched, res.Rounds)
	for _, bug := range res.InitialRep.Bugs {
		fmt.Fprintf(&b, "bug %d %s reachable=%v\n", bug.Node.ID, bug.Kind, bug.Reachable)
	}
	fmt.Fprintf(&b, "fixes:%s\n", res.Fixes.Describe())
	finalPl := res.Fixed
	if finalPl == nil {
		finalPl = res.Initial
	}
	file := spec.Build(res.Name, finalPl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)
	b.WriteString(file.Render())
	return b.String()
}

// TestDischargeOnlyProgramVerifiesIdentically is the guard for the
// pre-pass being a pure optimization: on a program whose safety is
// entirely provable by the dataflow layer, running with analysis on
// must skip solver queries yet produce results byte-identical to
// analysis off.
func TestDischargeOnlyProgramVerifiesIdentically(t *testing.T) {
	on := driver.DefaultConfig()
	on.Analysis = true
	resOn, err := driver.Run("guard", guardSrc, on)
	if err != nil {
		t.Fatalf("analysis on: %v", err)
	}
	off := driver.DefaultConfig()
	off.Analysis = false
	resOff, err := driver.Run("guard", guardSrc, off)
	if err != nil {
		t.Fatalf("analysis off: %v", err)
	}

	if resOn.Analysis == nil {
		t.Fatalf("no analysis result attached with Analysis on")
	}
	st := resOn.Analysis.Stats
	if st.Discharged == 0 {
		t.Fatalf("expected the pre-pass to discharge checks on the guard program, got 0 of %d", st.BugChecks)
	}
	if resOn.Bugs != 0 {
		t.Fatalf("guard program must be bug-free, got %d reachable bugs", resOn.Bugs)
	}
	if st.Discharged != st.BugChecks {
		t.Fatalf("expected every check discharged, got %d of %d", st.Discharged, st.BugChecks)
	}
	if resOn.InitialRep.Checks != 0 {
		t.Fatalf("everything was discharged yet the solver still saw %d queries", resOn.InitialRep.Checks)
	}
	if resOn.InitialRep.Checks > resOff.InitialRep.Checks {
		t.Fatalf("analysis on issued %d solver queries, off issued %d",
			resOn.InitialRep.Checks, resOff.InitialRep.Checks)
	}
	if gotOn, gotOff := fingerprint(resOn), fingerprint(resOff); gotOn != gotOff {
		t.Fatalf("verdicts differ between analysis on and off:\n--- on ---\n%s--- off ---\n%s", gotOn, gotOff)
	}

	// Discharged bugs must be reported unreachable, never dropped. WP
	// constant folding may resolve some of them to false on its own (they
	// then carry Discharged=false, having needed no query either way), so
	// the report-level count is bounded by the analysis-level one.
	var discharged int
	for _, b := range resOn.InitialRep.Bugs {
		if b.Discharged {
			discharged++
			if b.Reachable {
				t.Errorf("discharged bug %s reported reachable", b.Description())
			}
		}
	}
	if discharged > st.Discharged {
		t.Errorf("report carries %d discharged bugs, stats say only %d", discharged, st.Discharged)
	}
	if len(resOn.InitialRep.Bugs) != len(resOff.InitialRep.Bugs) {
		t.Errorf("bug list length differs: %d on vs %d off",
			len(resOn.InitialRep.Bugs), len(resOff.InitialRep.Bugs))
	}
}
