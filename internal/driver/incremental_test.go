package driver_test

import (
	"testing"

	"bf4/internal/driver"
	"bf4/internal/progs"
)

// TestIncrementalVerdictIdentity is the identity harness for the
// incremental solver core: for every corpus program, running with the
// persistent per-slice solver (clause reuse across retracted scopes,
// structural gate hashing, inprocessing between checks) must produce
// byte-identical verdicts, fixes, and inferred annotations to the
// one-shot configuration — incremental mode may change which CNF the
// solver sees, never what a check means.
func TestIncrementalVerdictIdentity(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		src := p.Source
		if p.Name == "switch" {
			if testing.Short() {
				continue
			}
			src = progs.GenerateSwitch(2)
		}
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			on := driver.DefaultConfig()
			on.Incremental = true
			resOn, err := driver.Run(p.Name, src, on)
			if err != nil {
				t.Fatalf("incremental on: %v", err)
			}
			off := driver.DefaultConfig()
			off.Incremental = false
			resOff, err := driver.Run(p.Name, src, off)
			if err != nil {
				t.Fatalf("incremental off: %v", err)
			}
			if gotOn, gotOff := fingerprint(resOn), fingerprint(resOff); gotOn != gotOff {
				t.Fatalf("verdicts differ between incremental on and off:\n--- on ---\n%s--- off ---\n%s", gotOn, gotOff)
			}
			// The two modes must see the same logical workload: discharge
			// decisions happen before the solver, so the check counts agree.
			if resOn.InitialRep.Checks != resOff.InitialRep.Checks {
				t.Fatalf("check counts differ: %d incremental vs %d one-shot",
					resOn.InitialRep.Checks, resOff.InitialRep.Checks)
			}
		})
	}
}
