// Package spec defines bf4's controller-assertion file format: the
// artifact the compile-time analysis hands to the runtime shim (paper
// §4.4). A spec file carries the table schemas (keys, match kinds,
// widths, actions) and, per table, the forbidden rule shapes inferred by
// internal/infer, serialized as S-expressions over the tables' control
// variables. The format is JSON on the wire with a human-readable
// SQL-like rendering (the paper's "condition header + condition body").
package spec

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"bf4/internal/core"
	"bf4/internal/infer"
	"bf4/internal/ir"
	"bf4/internal/smt"
)

// KeySchema describes one table key.
type KeySchema struct {
	Path      string `json:"path"`
	MatchKind string `json:"match_kind"`
	Width     int    `json:"width"`
	// Synthesized marks keys added by the Fixes algorithm; the runtime
	// API for these tables changed (paper §5).
	Synthesized bool `json:"synthesized,omitempty"`
}

// ParamSchema describes one action parameter.
type ParamSchema struct {
	Name  string `json:"name"`
	Width int    `json:"width"`
}

// ActionSchema describes one action bound to a table.
type ActionSchema struct {
	Name   string        `json:"name"`
	Params []ParamSchema `json:"params,omitempty"`
	// Index is the action_run selector value used in assertions.
	Index int `json:"index"`
	// Buggy marks actions containing a reachable bug; the shim rejects
	// default-rule updates selecting them (paper §4.4).
	Buggy bool `json:"buggy,omitempty"`
}

// TableSchema is the shim-visible shape of one table.
type TableSchema struct {
	Name    string          `json:"name"`
	Keys    []KeySchema     `json:"keys"`
	Actions []*ActionSchema `json:"actions"`
	Default string          `json:"default"`
	// Prefix is the control-variable prefix assertions use
	// (e.g. "pcn_nat$0").
	Prefix string `json:"prefix"`
}

// Assertion is one inferred controller annotation.
type Assertion struct {
	Table string `json:"table"`
	// Linked names a second table for multi-table assertions.
	Linked string `json:"linked,omitempty"`
	Source string `json:"source"`
	// Forbidden holds serialized conjunctions; a rule satisfying any of
	// them must be rejected.
	Forbidden []string `json:"forbidden"`
	// Vars carries the sort of every variable the conditions mention
	// (width; 0 = boolean).
	Vars map[string]int `json:"vars"`
}

// PropertyRecord documents one user @assert property check in the spec
// artifact: where it was declared and how the verify→infer loop left
// it. "holds" means the check was proven unreachable (discharged or
// unsat), "controlled" means the inferred annotations make it
// unreachable (the shim enforcing them keeps the property true), and
// "violated" means a dataplane bug remains. @assume constraints don't
// appear: they shape the input space rather than get checked.
type PropertyRecord struct {
	Origin string `json:"origin"` // declaration site, file:line:col
	Text   string `json:"text"`   // predicate as written
	// Table attributes the check to the table instance whose assert
	// point dominates it (empty outside any table).
	Table  string `json:"table,omitempty"`
	Status string `json:"status"` // holds | controlled | violated
}

// File is a complete spec file.
type File struct {
	Program    string         `json:"program"`
	Tables     []*TableSchema `json:"tables"`
	Assertions []*Assertion   `json:"assertions"`
	// Properties records the user @assert checks and their outcomes.
	Properties []*PropertyRecord `json:"properties,omitempty"`
	// Suggestions carries non-enforceable advice (egress-spec fix).
	Suggestions []string `json:"suggestions,omitempty"`
}

// Build assembles a spec file from inference results. rep (optional)
// supplies bug locations so that actions containing reachable bugs are
// flagged for the shim's default-rule policy.
func Build(program string, p *ir.Program, rep *core.Report, res *infer.Result, suggestions []string) *File {
	f := &File{Program: program, Suggestions: suggestions}
	buggy := map[*ir.TableInstance]map[string]bool{}
	if rep != nil {
		for _, b := range rep.Bugs {
			if !b.Reachable || b.Instance == nil {
				continue
			}
			if act := b.Instance.ActionOfNode(b.Node); act != "" {
				if buggy[b.Instance] == nil {
					buggy[b.Instance] = map[string]bool{}
				}
				buggy[b.Instance][act] = true
			}
		}
	}
	seen := map[string]bool{}
	for _, inst := range p.Instances {
		if seen[inst.Name()] {
			continue
		}
		seen[inst.Name()] = true
		ts := schemaFor(inst)
		for _, as := range ts.Actions {
			if buggy[inst][as.Name] {
				as.Buggy = true
			}
		}
		f.Tables = append(f.Tables, ts)
	}
	sort.Slice(f.Tables, func(i, j int) bool { return f.Tables[i].Prefix < f.Tables[j].Prefix })
	if rep != nil {
		for _, b := range rep.Bugs {
			if b.Kind != ir.BugAssertFail || b.Node.Prop == nil {
				continue
			}
			pr := &PropertyRecord{Origin: b.Node.Prop.Origin, Text: b.Node.Prop.Text}
			if b.Instance != nil {
				pr.Table = b.Instance.Table.Name
			}
			switch {
			case !b.Reachable:
				pr.Status = "holds"
			case res.Controlled[b.Node]:
				pr.Status = "controlled"
			default:
				pr.Status = "violated"
			}
			f.Properties = append(f.Properties, pr)
		}
		sort.Slice(f.Properties, func(i, j int) bool {
			a, b := f.Properties[i], f.Properties[j]
			if a.Origin != b.Origin {
				return a.Origin < b.Origin
			}
			return a.Table < b.Table
		})
	}
	for _, a := range res.Assertions {
		sa := &Assertion{
			Table:  a.Instance.Table.Name,
			Source: a.Source,
			Vars:   map[string]int{},
		}
		if a.Linked != nil {
			sa.Linked = a.Linked.Table.Name
		}
		for _, t := range a.Forbidden {
			sa.Forbidden = append(sa.Forbidden, smt.Serialize(t))
			for _, vt := range t.Vars(nil) {
				sa.Vars[vt.Name()] = vt.Sort().Width
			}
		}
		f.Assertions = append(f.Assertions, sa)
	}
	return f
}

func schemaFor(inst *ir.TableInstance) *TableSchema {
	t := inst.Table
	ts := &TableSchema{Name: t.Name, Prefix: inst.Prefix(), Default: t.Default.Name}
	for _, k := range t.Keys {
		ts.Keys = append(ts.Keys, KeySchema{
			Path: k.Path, MatchKind: k.MatchKind, Width: k.Width,
			Synthesized: k.Synthesized,
		})
	}
	names := make([]string, 0, len(inst.ActIndex))
	for name := range inst.ActIndex {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		as := &ActionSchema{Name: name, Index: inst.ActIndex[name]}
		for _, ai := range t.Actions {
			if ai.Name == name {
				for _, pi := range ai.Params {
					as.Params = append(as.Params, ParamSchema{Name: pi.Name, Width: pi.Width})
				}
			}
		}
		if name == t.Default.Name && len(as.Params) == 0 {
			for _, pi := range t.Default.Params {
				as.Params = append(as.Params, ParamSchema{Name: pi.Name, Width: pi.Width})
			}
		}
		ts.Actions = append(ts.Actions, as)
	}
	return ts
}

// Marshal renders the file as JSON.
func (f *File) Marshal() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}

// Parse reads a JSON spec file.
func Parse(data []byte) (*File, error) {
	f := &File{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return f, nil
}

// Table returns the schema for a table name, or nil.
func (f *File) Table(name string) *TableSchema {
	for _, t := range f.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// AssertionsFor returns the assertions that mention a table (as primary
// or linked), pre-clustered the way the shim needs them (paper §4.4 step
// a: constant-time dispatch by table id).
func (f *File) AssertionsFor(table string) []*Assertion {
	var out []*Assertion
	for _, a := range f.Assertions {
		if a.Table == table || a.Linked == table {
			out = append(out, a)
		}
	}
	return out
}

// Render produces the paper's SQL-like human-readable form: a condition
// header naming the referenced variables and a body over them.
func (f *File) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- bf4 controller assertions for %s\n", f.Program)
	for _, s := range f.Suggestions {
		fmt.Fprintf(&b, "-- suggestion: %s\n", s)
	}
	for _, pr := range f.Properties {
		where := ""
		if pr.Table != "" {
			where = " in " + pr.Table
		}
		fmt.Fprintf(&b, "-- property (%s) @ %s%s: %s\n", pr.Text, pr.Origin, where, pr.Status)
	}
	for _, a := range f.Assertions {
		names := make([]string, 0, len(a.Vars))
		for n := range a.Vars {
			names = append(names, n)
		}
		sort.Strings(names)
		on := a.Table
		if a.Linked != "" {
			on += ", " + a.Linked
		}
		fmt.Fprintf(&b, "ASSERT ON %s  -- %s\n", on, a.Source)
		fmt.Fprintf(&b, "  WITH (%s)\n", strings.Join(names, ", "))
		for _, forb := range a.Forbidden {
			fmt.Fprintf(&b, "  FORBID %s\n", forb)
		}
	}
	return b.String()
}

// ParseForbidden reconstructs a forbidden condition as a term.
func (a *Assertion) ParseForbidden(f *smt.Factory, i int) (*smt.Term, error) {
	sorts := smt.VarSorts{}
	for name, w := range a.Vars {
		if w == 0 {
			sorts[name] = smt.BoolSort
		} else {
			sorts[name] = smt.BV(w)
		}
	}
	return smt.Parse(f, a.Forbidden[i], sorts)
}
