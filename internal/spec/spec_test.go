package spec

import (
	"strings"
	"testing"

	"bf4/internal/core"
	"bf4/internal/infer"
	"bf4/internal/ir"
	"bf4/internal/smt"
)

const natSrc = `
header ipv4_t { bit<8> ttl; bit<32> srcAddr; }
struct metadata { bit<1> fwd; }
struct headers { ipv4_t ipv4; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w1: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action drop_() { mark_to_drop(smeta); }
    action rewrite(bit<32> a) { hdr.ipv4.srcAddr = a; smeta.egress_spec = 9w2; }
    table nat {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
        actions = { rewrite; drop_; }
        default_action = drop_();
    }
    apply { nat.apply(); }
}
V1Switch(P(), Ing()) main;
`

func buildFile(t *testing.T) *File {
	t.Helper()
	pl, err := core.Compile(natSrc, ir.DefaultOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	rep := pl.FindBugs()
	res := infer.Run(pl, rep, infer.DefaultOptions())
	return Build("nat_prog", pl.IR, rep, res, []string{"a suggestion"})
}

func TestBuildSchema(t *testing.T) {
	f := buildFile(t)
	ts := f.Table("nat")
	if ts == nil {
		t.Fatal("nat schema missing")
	}
	if len(ts.Keys) != 2 || ts.Keys[0].MatchKind != "exact" || ts.Keys[1].MatchKind != "ternary" {
		t.Fatalf("keys: %+v", ts.Keys)
	}
	if ts.Prefix != "pcn_nat$0" {
		t.Fatalf("prefix = %s", ts.Prefix)
	}
	var rewrite *ActionSchema
	for _, a := range ts.Actions {
		if a.Name == "rewrite" {
			rewrite = a
		}
	}
	if rewrite == nil || len(rewrite.Params) != 1 || rewrite.Params[0].Width != 32 {
		t.Fatalf("rewrite action schema: %+v", rewrite)
	}
	// The rewrite action writes a possibly-invalid header: it must be
	// flagged buggy for the shim's default-rule policy.
	if !rewrite.Buggy {
		t.Fatal("rewrite must be flagged buggy")
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	f := buildFile(t)
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Program != f.Program || len(g.Tables) != len(f.Tables) || len(g.Assertions) != len(f.Assertions) {
		t.Fatalf("round trip lost structure")
	}
	if len(g.Suggestions) != 1 {
		t.Fatal("suggestions lost")
	}
	// Every forbidden condition must re-parse into a term.
	fac := smt.NewFactory()
	for _, a := range g.Assertions {
		for i := range a.Forbidden {
			if _, err := a.ParseForbidden(fac, i); err != nil {
				t.Errorf("ParseForbidden(%d): %v", i, err)
			}
		}
	}
}

func TestRender(t *testing.T) {
	f := buildFile(t)
	r := f.Render()
	for _, want := range []string{"ASSERT ON nat", "FORBID", "WITH", "suggestion"} {
		if !strings.Contains(r, want) {
			t.Errorf("render lacks %q:\n%s", want, r)
		}
	}
}

func TestAssertionsForClustering(t *testing.T) {
	f := buildFile(t)
	if len(f.AssertionsFor("nat")) == 0 {
		t.Fatal("no assertions for nat")
	}
	if len(f.AssertionsFor("nonexistent")) != 0 {
		t.Fatal("assertions leaked to unknown table")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
