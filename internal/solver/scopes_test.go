package solver

import (
	"testing"

	"bf4/internal/smt"
)

// TestPushPopScopes: assertions made inside a Push/Pop scope must stop
// constraining the solver after Pop, while outer assertions persist.
func TestPushPopScopes(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	x := f.BVVar("x", 8)
	s.Assert(f.Eq(x, f.BVConst64(1, 8)))
	if res := s.Check(); res != Sat {
		t.Fatalf("base: got %v, want Sat", res)
	}

	s.Push()
	s.Assert(f.Eq(x, f.BVConst64(2, 8))) // contradicts x == 1
	if res := s.Check(); res != Unsat {
		t.Fatalf("inside scope: got %v, want Unsat", res)
	}
	s.Pop()

	if res := s.Check(); res != Sat {
		t.Fatalf("after Pop: got %v, want Sat — scoped assertion leaked", res)
	}
	if v := s.Model()["x"].Int64(); v != 1 {
		t.Fatalf("model x=%d, want 1 (outer assertion must persist)", v)
	}
}

// TestNestedScopes: inner Pops retract only the innermost assertions.
func TestNestedScopes(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	x := f.BVVar("x", 8)

	s.Push()
	s.Assert(f.Ult(x, f.BVConst64(10, 8)))
	s.Push()
	s.Assert(f.Ugt(x, f.BVConst64(20, 8))) // contradicts x < 10
	if res := s.Check(); res != Unsat {
		t.Fatalf("inner: got %v, want Unsat", res)
	}
	if n := s.NumScopes(); n != 2 {
		t.Fatalf("NumScopes = %d, want 2", n)
	}
	s.Pop()
	if res := s.Check(); res != Sat {
		t.Fatalf("after inner Pop: got %v, want Sat", res)
	}
	if v := s.Model()["x"].Int64(); v >= 10 {
		t.Fatalf("model x=%d violates still-open outer scope x<10", v)
	}
	s.Pop()
	if n := s.NumScopes(); n != 0 {
		t.Fatalf("NumScopes = %d, want 0", n)
	}
	// Everything retracted: x is unconstrained again.
	if res := s.Check(f.Ugt(x, f.BVConst64(200, 8))); res != Sat {
		t.Fatalf("after both Pops: got %v, want Sat", res)
	}
}

// TestScopesDoNotPolluteUnsatCore: activation literals for open scopes
// are internal bookkeeping and must never show up in an unsat core.
func TestScopesDoNotPolluteUnsatCore(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	x := f.BVVar("x", 8)
	s.Push()
	s.Assert(f.Ult(x, f.BVConst64(5, 8)))
	a := f.Ugt(x, f.BVConst64(10, 8))
	if res := s.Check(a); res != Unsat {
		t.Fatalf("got %v, want Unsat", res)
	}
	core := s.UnsatCore()
	if len(core) != 1 || core[0] != a {
		t.Fatalf("core %v, want exactly the caller's assumption", core)
	}
	s.Pop()
}

// TestPopWithoutPushPanics: a scope-accounting bug must fail loudly.
func TestPopWithoutPushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Pop without Push did not panic")
		}
	}()
	s := New(smt.NewFactory())
	s.Pop()
}
