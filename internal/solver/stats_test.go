package solver

import (
	"fmt"
	"testing"

	"bf4/internal/obs"
	"bf4/internal/smt"
)

// distinct asserts pairwise distinctness of n fresh 8-bit variables (a
// satisfiable constraint that still requires search) and returns a
// pigeonhole assumption set — every variable below n-1 — that is jointly
// unsatisfiable with it. Keeping the unsat half in assumptions leaves the
// solver usable for later checks.
func distinct(f *smt.Factory, s *Solver, tag string, n int) []*smt.Term {
	vars := make([]*smt.Term, n)
	for i := range vars {
		vars[i] = f.BVVar(fmt.Sprintf("%s_x%d", tag, i), 8)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.Assert(f.Not(f.Eq(vars[i], vars[j])))
		}
	}
	pigeon := make([]*smt.Term, n)
	for i, v := range vars {
		pigeon[i] = f.Ult(v, f.BVConst64(int64(n-1), 8))
	}
	return pigeon
}

// TestCheckStatsAreDeltas is the regression test for per-query solver
// statistics: two sequential checks on ONE solver must report independent
// deltas, not cumulative totals. Under solver reuse (the bug-finding
// solver serving hundreds of queries, worker pools sharing a recheck
// solver) cumulative counters misattribute the first query's work to
// every later one.
func TestCheckStatsAreDeltas(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	s.SetRewrite(nil) // keep the circuit as written: guarantees search work

	pigeon := distinct(f, s, "a", 6)
	if res := s.Check(pigeon...); res != Unsat {
		t.Fatalf("first check = %v, want unsat", res)
	}
	first := s.LastCheckStats()
	if first.Result != Unsat {
		t.Fatalf("first stats result = %v", first.Result)
	}
	if first.Search.Propagations == 0 {
		t.Fatal("first check reports no propagations; formula too easy for the test")
	}
	if first.NewVars == 0 || first.NewClauses == 0 {
		t.Fatalf("first check reports no CNF growth: %+v", first)
	}

	// Second check: a trivially satisfiable independent query. Its delta
	// must NOT include the first check's work.
	y := f.BVVar("y", 8)
	cond := f.Eq(y, f.BVConst64(3, 8))
	if res := s.Check(cond); res != Sat {
		t.Fatalf("second check = %v, want sat", res)
	}
	second := s.LastCheckStats()
	if second.Result != Sat {
		t.Fatalf("second stats result = %v", second.Result)
	}
	if second.Search.Propagations >= first.Search.Propagations {
		t.Fatalf("second check's stats look cumulative, not delta:\nfirst  %+v\nsecond %+v",
			first.Search, second.Search)
	}
	// A delta can never go negative.
	for name, v := range map[string]int64{
		"conflicts":    second.Search.Conflicts,
		"propagations": second.Search.Propagations,
		"decisions":    second.Search.Decisions,
		"restarts":     second.Search.Restarts,
		"learned":      second.Search.Learned,
	} {
		if v < 0 {
			t.Errorf("%s delta negative: %d", name, v)
		}
	}
}

// TestCheckStatsSumToCumulative: the per-check deltas across a sequence
// must add up to the solver's cumulative totals — nothing double-counted,
// nothing dropped.
func TestCheckStatsSumToCumulative(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	s.SetRewrite(nil)
	pigeon := distinct(f, s, "a", 6)
	// Assert-time unit propagation (clauses added outside any Check) is
	// deliberately attributed to no check; measure from here.
	_, _, baseConflicts, baseProps := s.Stats()

	var sumConflicts, sumProps int64
	add := func() {
		d := s.LastCheckStats().Search
		sumConflicts += d.Conflicts
		sumProps += d.Propagations
	}
	s.Check(pigeon...)
	add()
	for i := 0; i < 3; i++ {
		s.Check(f.Eq(f.BVVar(fmt.Sprintf("q%d", i), 8), f.BVConst64(int64(i), 8)))
		add()
	}
	_, _, conflicts, props := s.Stats()
	conflicts -= baseConflicts
	props -= baseProps
	if conflicts != sumConflicts || props != sumProps {
		t.Fatalf("deltas do not sum to cumulative: conflicts %d vs %d, propagations %d vs %d",
			sumConflicts, conflicts, sumProps, props)
	}
}

// TestSolverObsRecording: with a registry installed, counters accumulate
// delta-per-check values and the verdicts are unchanged.
func TestSolverObsRecording(t *testing.T) {
	run := func(reg *obs.Registry) []Result {
		f := smt.NewFactory()
		s := New(f)
		s.SetObs(reg)
		s.SetRewrite(nil)
		pigeon := distinct(f, s, "a", 5)
		var out []Result
		out = append(out, s.Check(pigeon...))
		out = append(out, s.Check(f.Eq(f.BVVar("z", 8), f.BVConst64(1, 8))))
		return out
	}

	reg := obs.NewRegistry()
	withObs := run(reg)
	without := run(nil)
	for i := range withObs {
		if withObs[i] != without[i] {
			t.Fatalf("check %d verdict differs with obs on: %v vs %v", i, withObs[i], without[i])
		}
	}
	if got := reg.CounterValue("bf4_solver_checks_total"); got != 2 {
		t.Fatalf("checks counter = %d, want 2", got)
	}
	if reg.CounterValue("bf4_solver_unsat_total") != 1 || reg.CounterValue("bf4_solver_sat_total") != 1 {
		t.Fatalf("verdict counters wrong: unsat=%d sat=%d",
			reg.CounterValue("bf4_solver_unsat_total"), reg.CounterValue("bf4_solver_sat_total"))
	}
	if reg.CounterValue("bf4_solver_propagations_total") == 0 {
		t.Fatal("propagation counter empty")
	}
	h := reg.Histogram("bf4_solver_check_conflicts", obs.CountBuckets)
	if h.Count() != 2 {
		t.Fatalf("conflict histogram count = %d, want 2", h.Count())
	}
	if reg.GaugeValue("bf4_solver_cnf_vars") == 0 {
		t.Fatal("cnf vars gauge empty")
	}
}
