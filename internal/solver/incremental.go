// Incremental mode: one persistent solver serves every bug check of a
// CFG slice. Each check runs inside a retractable activation scope
// (CheckIn/Retract), so learned clauses survive from check to check;
// structural gate hashing in the bit-blaster emits shared CNF for shared
// term DAGs once per slice; and bounded inprocessing between checks
// cleans out the clauses of retracted scopes, with every externally
// visible literal frozen (the bit-blaster freezes all term-memo roots,
// which covers activation literals and assumption roots).
//
// Incremental mode changes which CNF the solver sees, never what a check
// means: verdicts with -incremental=on and off are byte-identical on the
// full corpus, which the driver's identity harness enforces the same way
// it does for -analysis and -rewrite.

package solver

import (
	"bf4/internal/sat"
	"bf4/internal/smt"
)

// SetIncremental toggles incremental mode on this solver: structural
// gate hashing in the bit-blaster, guard-clause scope assertions, and
// bounded inprocessing after every Retract (the pass is cheap — one
// occurrence-list sweep over a database that shrinks as it runs — and
// deferring it measurably costs later checks propagation work on dead
// guard clauses). Call it before the first Assert; circuitry already
// emitted is not retroactively shared.
func (s *Solver) SetIncremental(on bool) {
	s.incremental = on
	s.ctx.SetStructHash(on)
	if on && s.inprocEvery == 0 {
		s.inprocEvery = 1
	}
}

// Incremental reports whether incremental mode is on.
func (s *Solver) Incremental() bool { return s.incremental }

// CheckIn opens a retractable scope, asserts cond inside it, and checks
// satisfiability. The scope is left open so the caller can read Model or
// UnsatCore against it; Retract closes it. The scope lives in the
// solver's own state between the two calls, which is what lets one
// persistent solver interleave check, model extraction, and retraction
// across a whole slice's bug list.
func (s *Solver) CheckIn(cond *smt.Term) Result {
	s.Push()
	s.Assert(cond)
	return s.Check()
}

// Retract closes the scope opened by the most recent CheckIn. On an
// incremental solver it periodically runs bounded inprocessing, which
// deletes the now-satisfied guard clauses of retracted scopes and
// strengthens learned clauses that mention dead activation literals down
// to their scope-independent content.
func (s *Solver) Retract() {
	s.Pop()
	s.scopedChecks++
	if s.incremental && s.inprocEvery > 0 && s.scopedChecks%s.inprocEvery == 0 {
		s.Inprocess()
	}
}

// CheckScoped checks cond inside a retractable activation scope when the
// solver is incremental, falling back to an assumption-based Check
// otherwise. Both paths leave the model and unsat core readable; the
// scoped path additionally lets learned clauses that mention cond's
// circuitry persist for later checks.
func (s *Solver) CheckScoped(cond *smt.Term) Result {
	if !s.incremental {
		return s.Check(cond)
	}
	res := s.CheckIn(cond)
	s.Retract()
	return res
}

// Inprocess runs one bounded inprocessing pass over the SAT clause
// database and purges bit-blaster gate-memo entries that mention
// eliminated variables (their defining clauses are gone, so their
// outputs must never be reused). Safe to call between any two checks; it
// is a no-op on an unsat database.
func (s *Solver) Inprocess() sat.InprocessResult {
	res := s.sat.Inprocess(sat.InprocessOptions{})
	s.ctx.ForgetEliminated(res.Eliminated)
	h := &s.hooks
	h.inprocessings.Inc()
	h.inprocDeleted.Add(int64(res.Deleted))
	h.inprocSubsumed.Add(int64(res.Subsumed))
	h.inprocStrengthened.Add(int64(res.Strengthened))
	h.inprocElimVars.Add(int64(len(res.Eliminated)))
	return res
}
