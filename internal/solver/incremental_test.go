package solver

import (
	"testing"

	"bf4/internal/smt"
)

// sliceFixture builds a shared "slice" constraint set and a list of
// bug-condition-like probes over it.
func sliceFixture(f *smt.Factory) (base, conds []*smt.Term) {
	x := f.BVVar("x", 8)
	y := f.BVVar("y", 8)
	z := f.BVVar("z", 8)
	base = []*smt.Term{
		f.Ult(x, f.BVConst64(100, 8)),
		f.Eq(f.Add(x, y), f.BVConst64(50, 8)),
		f.Eq(z, f.BVAnd(x, f.BVConst64(0x0f, 8))),
	}
	conds = []*smt.Term{
		f.Ugt(x, f.BVConst64(150, 8)),
		f.Eq(x, f.BVConst64(20, 8)),
		f.And(f.Eq(x, f.BVConst64(20, 8)), f.Eq(y, f.BVConst64(99, 8))),
		f.Eq(y, f.BVConst64(30, 8)),
		f.Ugt(z, f.BVConst64(20, 8)),
		f.And(f.Ult(y, f.BVConst64(255, 8)), f.Eq(z, f.BVConst64(7, 8))),
	}
	return base, conds
}

// TestScopedChecksAdversarialOrdering pins the core incremental-soundness
// property: clauses learned under a retracted scope must never flip a
// later check's verdict, for any ordering of the checks on one slice.
// Every verdict is compared against a fresh single-shot solver, with
// forced inprocessing between checks to exercise clause cleanup at every
// boundary.
func TestScopedChecksAdversarialOrdering(t *testing.T) {
	f := smt.NewFactory()
	base, conds := sliceFixture(f)

	// Reference verdicts from fresh, non-incremental solvers.
	want := make([]Result, len(conds))
	for i, c := range conds {
		fresh := New(f)
		for _, b := range base {
			fresh.Assert(b)
		}
		want[i] = fresh.Check(c)
	}

	orders := [][]int{
		{0, 1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1, 0},
		{2, 0, 5, 1, 4, 3},
		{1, 1, 0, 0, 2, 2, 5, 3, 4}, // repeated checks must stay stable
	}
	for oi, order := range orders {
		s := New(f)
		s.SetIncremental(true)
		for _, b := range base {
			s.Assert(b)
		}
		for step, ci := range order {
			res := s.CheckIn(conds[ci])
			if res != want[ci] {
				t.Fatalf("order %d step %d: cond %d got %v, want %v (learned-clause leak across retracted scopes?)",
					oi, step, ci, res, want[ci])
			}
			if res == Sat {
				// The model must satisfy the base and the scoped condition.
				m := s.Model()
				for _, b := range base {
					if !smt.EvalBool(b, m) {
						t.Fatalf("order %d step %d: model violates base %s", oi, step, b)
					}
				}
				if !smt.EvalBool(conds[ci], m) {
					t.Fatalf("order %d step %d: model violates cond %s", oi, step, conds[ci])
				}
			}
			s.Retract()
			// Force inprocessing at every boundary, not just every 4th.
			s.Inprocess()
		}
	}
}

// TestCheckScopedFallback: with incremental off, CheckScoped must be an
// assumption-based Check — same verdicts, usable model, no scope state.
func TestCheckScopedFallback(t *testing.T) {
	f := smt.NewFactory()
	base, conds := sliceFixture(f)
	inc := New(f)
	inc.SetIncremental(true)
	plain := New(f)
	for _, b := range base {
		inc.Assert(b)
		plain.Assert(b)
	}
	for i, c := range conds {
		ri, rp := inc.CheckScoped(c), plain.CheckScoped(c)
		if ri != rp {
			t.Fatalf("cond %d: incremental %v, plain %v", i, ri, rp)
		}
	}
	if n := inc.NumScopes(); n != 0 {
		t.Fatalf("CheckScoped left %d scopes open", n)
	}
}

// TestIncrementalUnsatCoreUnpolluted: scoped checks must not leak
// activation literals into caller-visible unsat cores.
func TestIncrementalUnsatCoreUnpolluted(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	s.SetIncremental(true)
	x := f.BVVar("x", 8)
	s.Assert(f.Ult(x, f.BVConst64(5, 8)))
	// Burn a few scoped checks first so retracted activation literals and
	// learned clauses are in play.
	for i := 0; i < 5; i++ {
		s.CheckIn(f.Eq(x, f.BVConst64(int64(i), 8)))
		s.Retract()
	}
	a := f.Ugt(x, f.BVConst64(10, 8))
	if res := s.Check(a); res != Unsat {
		t.Fatalf("got %v, want Unsat", res)
	}
	core := s.UnsatCore()
	if len(core) != 1 || core[0] != a {
		t.Fatalf("core %v, want exactly the caller's assumption", core)
	}
}

// TestIncrementalStatsShrink: after many retracted scopes, inprocessing
// must actually shrink the clause database below its peak.
func TestIncrementalStatsShrink(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	s.SetIncremental(true)
	x := f.BVVar("x", 8)
	y := f.BVVar("y", 8)
	s.Assert(f.Eq(f.Add(x, y), f.BVConst64(77, 8)))
	peak := 0
	for i := 0; i < 12; i++ {
		s.CheckIn(f.Eq(x, f.BVConst64(int64(i*17%256), 8)))
		if _, clauses, _, _ := s.Stats(); clauses > peak {
			peak = clauses
		}
		s.Retract()
	}
	s.Inprocess()
	_, after, _, _ := s.Stats()
	if after >= peak {
		t.Fatalf("clause DB did not shrink: peak %d, after inprocessing %d", peak, after)
	}
}
