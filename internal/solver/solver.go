// Package solver is the Z3-like façade bf4's algorithms program against:
// assert formulas, check satisfiability under assumptions, extract models
// and unsat cores. It glues the hash-consed term layer (internal/smt) to
// the bit-blaster (internal/bitblast) and the CDCL core (internal/sat),
// and is incremental: learned clauses and blasted circuitry persist across
// Check calls, which is what makes the per-bug reachability queries and
// Infer's model/core loop cheap after the first call.
package solver

import (
	"fmt"
	"math/big"
	"time"

	"bf4/internal/bitblast"
	"bf4/internal/obs"
	"bf4/internal/sat"
	"bf4/internal/smt"
)

// Result mirrors sat.Result at the SMT level.
type Result = sat.Result

// Re-exported results for call-site readability.
const (
	Sat     = sat.Sat
	Unsat   = sat.Unsat
	Unknown = sat.Unknown
)

// Solver is an incremental QF_BV solver. Create with New; not safe for
// concurrent use.
type Solver struct {
	f    *smt.Factory
	sat  *sat.Solver
	ctx  *bitblast.Context
	vars map[*smt.Term]bool // variables seen so far, for model extraction

	// varSeen records every DAG node registerVars has walked (keyed by
	// Term.ID()), so repeated asserts over shared structure cost one walk
	// of each distinct node in total instead of re-walking the whole DAG
	// per call.
	varSeen map[uint32]bool

	// rewrite, when non-nil, simplifies every formula after variable
	// registration and before bit-blasting (smaller CNF). It must be
	// evaluation-preserving; models and unsat cores are reported in terms
	// of the original formulas. Installed from the factory's simplify
	// provider, or explicitly with SetRewrite.
	rewrite func(*smt.Term) *smt.Term

	lastCore []*smt.Term
	checks   int

	// lastCheck is the per-query statistics delta of the most recent
	// Check call (see LastCheckStats).
	lastCheck CheckStats

	// hooks holds retained metric handles when SetObs installed a
	// registry; the zero value (all nil) is the disabled layer — every
	// recording call is a nil-check no-op.
	hooks obsHooks

	// scopes holds the activation literal of each open Push frame;
	// scopeSeq names fresh activation variables (never reused, since Pop
	// permanently asserts the negation).
	scopes   []*smt.Term
	scopeSeq int

	// incremental enables the persistent-solver features (structural gate
	// hashing, guarded scope assertions, periodic inprocessing). See
	// SetIncremental.
	incremental  bool
	scopedChecks int
	inprocEvery  int
	lastGateHits int64
}

// CheckStats describes one Check call in isolation: every field is a
// delta over that call, not a cumulative per-solver total. Cumulative
// counters under solver reuse (incremental checks, one solver serving
// many queries in a worker pool) misattribute work across queries; the
// snapshot-delta form is what the observability layer and the experiment
// harness consume.
type CheckStats struct {
	// Result is the check's outcome.
	Result Result
	// Search holds the SAT search-statistic deltas for this check.
	Search sat.Stats
	// NewVars and NewClauses count CNF growth during this check
	// (assumption blasting; the incremental circuit persists).
	NewVars, NewClauses int
	// BlastTime covers simplification + bit-blasting of the assumptions;
	// SearchTime covers the CDCL search itself.
	BlastTime, SearchTime time.Duration
}

// obsHooks are the solver's retained metric handles (nil when disabled).
type obsHooks struct {
	checks, sat, unsat, unknown                  *obs.Counter
	conflicts, propagations, decisions, restarts *obs.Counter
	learned, blastNs, searchNs                   *obs.Counter
	checkConflicts, checkNs                      *obs.Histogram
	cnfVars, cnfClauses                          *obs.Gauge

	inprocessings, inprocDeleted, inprocSubsumed *obs.Counter
	inprocStrengthened, inprocElimVars, gateHits *obs.Counter
}

// SetObs installs a metrics registry: every subsequent Check records its
// per-query deltas under the bf4_solver_* names. A nil registry disables
// recording (the default). Counters are shared and atomic, so many
// solvers across worker goroutines may point at one registry.
func (s *Solver) SetObs(reg *obs.Registry) {
	if reg == nil {
		s.hooks = obsHooks{}
		return
	}
	s.hooks = obsHooks{
		checks:         reg.Counter("bf4_solver_checks_total"),
		sat:            reg.Counter("bf4_solver_sat_total"),
		unsat:          reg.Counter("bf4_solver_unsat_total"),
		unknown:        reg.Counter("bf4_solver_unknown_total"),
		conflicts:      reg.Counter("bf4_solver_conflicts_total"),
		propagations:   reg.Counter("bf4_solver_propagations_total"),
		decisions:      reg.Counter("bf4_solver_decisions_total"),
		restarts:       reg.Counter("bf4_solver_restarts_total"),
		learned:        reg.Counter("bf4_solver_learned_clauses_total"),
		blastNs:        reg.Counter("bf4_solver_blast_ns_total"),
		searchNs:       reg.Counter("bf4_solver_search_ns_total"),
		checkConflicts: reg.Histogram("bf4_solver_check_conflicts", obs.CountBuckets),
		checkNs:        reg.Histogram("bf4_solver_check_ns", obs.DurationBuckets),
		cnfVars:        reg.Gauge("bf4_solver_cnf_vars"),
		cnfClauses:     reg.Gauge("bf4_solver_cnf_clauses"),

		inprocessings:      reg.Counter("bf4_solver_inprocessings_total"),
		inprocDeleted:      reg.Counter("bf4_solver_inprocess_deleted_total"),
		inprocSubsumed:     reg.Counter("bf4_solver_inprocess_subsumed_total"),
		inprocStrengthened: reg.Counter("bf4_solver_inprocess_strengthened_total"),
		inprocElimVars:     reg.Counter("bf4_solver_inprocess_elim_vars_total"),
		gateHits:           reg.Counter("bf4_solver_gate_hits_total"),
	}
}

// New returns an empty solver over the given term factory. If the
// factory has a simplify provider installed (see
// smt.Factory.SetSimplifyProvider), the solver gets a private rewrite
// pass from it.
func New(f *smt.Factory) *Solver {
	s := sat.New()
	return &Solver{
		f:       f,
		sat:     s,
		ctx:     bitblast.New(f, s),
		vars:    make(map[*smt.Term]bool),
		varSeen: make(map[uint32]bool),
		rewrite: f.NewSimplifier(),
	}
}

// SetRewrite installs (or with nil removes) the pre-blast simplification
// pass, overriding whatever New picked up from the factory. The pass must
// preserve evaluation under every environment.
func (s *Solver) SetRewrite(fn func(*smt.Term) *smt.Term) { s.rewrite = fn }

// Simplify applies the solver's rewrite pass to t (identity when no pass
// is installed). Callers can use it to pre-discharge queries: a formula
// that simplifies to false is unsatisfiable without a Check.
func (s *Solver) Simplify(t *smt.Term) *smt.Term {
	if s.rewrite == nil {
		return t
	}
	return s.rewrite(t)
}

// Factory returns the term factory this solver builds on.
func (s *Solver) Factory() *smt.Factory { return s.f }

// NumChecks returns the number of Check calls made, a useful statistic for
// the evaluation harness.
func (s *Solver) NumChecks() int { return s.checks }

// SetConflictBudget bounds each subsequent Check call to approximately n
// conflicts; 0 removes the bound. Budgeted checks may return Unknown.
func (s *Solver) SetConflictBudget(n int64) { s.sat.Budget.Conflicts = n }

func (s *Solver) registerVars(t *smt.Term) {
	for _, v := range t.VarsSeen(nil, s.varSeen) {
		if s.vars[v] {
			continue
		}
		s.vars[v] = true
		// Blast the variable now so that model extraction always works,
		// even if simplification erased it from the final circuit.
		if v.Sort().IsBool() {
			s.ctx.Literal(v)
		} else {
			s.ctx.Bits(v)
		}
	}
}

// Assert adds t to the solver's constraint set: permanently when no Push
// scope is open, otherwise until the innermost scope is popped.
func (s *Solver) Assert(t *smt.Term) {
	if n := len(s.scopes); n > 0 {
		if s.incremental {
			// Emit direct guard clauses (¬act ∨ conjunct) instead of a
			// Tseitin implication gate: when Retract asserts ¬act, every
			// guard clause is satisfied outright and the next inprocessing
			// pass deletes it, instead of leaving dead gate circuitry.
			rt := s.Simplify(t)
			s.registerVars(rt)
			s.ctx.AssertImplied(s.scopes[n-1], rt)
			return
		}
		// Guard with the innermost activation literal. Scopes pop LIFO,
		// so when an outer scope dies every inner one is already dead;
		// guarding with one literal is enough.
		t = s.f.Implies(s.scopes[n-1], t)
	}
	// Variables are collected from the SIMPLIFIED formula: a variable the
	// rewrite erased is unconstrained, so leaving its bits unallocated
	// keeps the CNF smaller without losing models — the rewrite preserves
	// evaluation under every total environment, and absent variables
	// default to zero under the smt.Eval convention, so a model of the
	// simplified formula zero-extends to one of the original.
	rt := s.Simplify(t)
	s.registerVars(rt)
	// With the simplification layer on and no activation literal in
	// play, a top-level conjunction splits into one unit assertion per
	// conjunct — the standard assert-time flattening that skips the
	// Tseitin gate for the conjunction itself.
	if s.rewrite != nil && len(s.scopes) == 0 && rt.Op() == smt.OpAnd {
		for _, a := range rt.Args() {
			s.ctx.AssertTrue(a)
		}
		return
	}
	s.ctx.AssertTrue(rt)
}

// Push opens a retractable assertion scope, emulated with an activation
// literal (the classic trick for assumption-based incremental SAT):
// assertions made while the scope is open are guarded by a fresh boolean,
// Check passes the booleans of all open scopes as extra assumptions, and
// Pop permanently asserts the negation, turning the scope's assertions
// into tautologies. Learned clauses survive pops, keeping the solver
// incremental across scoped probes.
func (s *Solver) Push() {
	act := s.f.BoolVar(fmt.Sprintf("$scope%d", s.scopeSeq))
	s.scopeSeq++
	s.registerVars(act)
	s.scopes = append(s.scopes, act)
}

// Pop closes the innermost Push scope, retracting every assertion made
// inside it. It panics without a matching Push.
func (s *Solver) Pop() {
	n := len(s.scopes)
	if n == 0 {
		panic("solver: Pop without matching Push")
	}
	act := s.scopes[n-1]
	s.scopes = s.scopes[:n-1]
	s.ctx.AssertTrue(s.f.Not(act))
}

// NumScopes returns the number of currently open Push scopes.
func (s *Solver) NumScopes() int { return len(s.scopes) }

// Check determines satisfiability of the asserted formulas together with
// the given assumptions. Unlike Assert, assumptions hold only for this
// call. After Unsat, UnsatCore returns the subset of assumptions used.
func (s *Solver) Check(assumptions ...*smt.Term) Result {
	s.checks++
	start := time.Now()
	preStats := s.sat.StatsSnapshot()
	preVars, preClauses := s.sat.NumVars(), s.sat.NumClauses()
	lits := make([]sat.Lit, 0, len(assumptions)+len(s.scopes))
	byLit := make(map[sat.Lit]*smt.Term, len(assumptions))
	for _, act := range s.scopes {
		// Activation literals of open scopes are implicit assumptions;
		// they are not part of the caller's unsat core.
		lits = append(lits, s.ctx.Literal(act))
	}
	for _, a := range assumptions {
		if a.IsTrue() {
			continue
		}
		// Blast the simplified form (smaller circuit) but keep the core
		// map keyed to the caller's original assumption. A rewrite to
		// true means the assumption is a tautology and cannot appear in
		// any unsat core; a rewrite to false blasts to the false literal
		// and surfaces in the core as the original formula.
		ra := s.Simplify(a)
		if ra.IsTrue() {
			continue
		}
		s.registerVars(ra)
		l := s.ctx.Literal(ra)
		if _, dup := byLit[l]; !dup {
			byLit[l] = a
			lits = append(lits, l)
		}
	}
	blastDone := time.Now()
	res := s.sat.Solve(lits...)
	if res == Unsat {
		s.lastCore = s.lastCore[:0]
		for _, l := range s.sat.FailedAssumptions() {
			if t, ok := byLit[l]; ok {
				s.lastCore = append(s.lastCore, t)
			}
		}
	}
	s.lastCheck = CheckStats{
		Result:     res,
		Search:     s.sat.StatsSnapshot().Sub(preStats),
		NewVars:    s.sat.NumVars() - preVars,
		NewClauses: s.sat.NumClauses() - preClauses,
		BlastTime:  blastDone.Sub(start),
		SearchTime: time.Since(blastDone),
	}
	s.recordCheck()
	return res
}

// recordCheck publishes the last check's deltas to the installed
// registry; with no registry every call is a nil-receiver no-op.
func (s *Solver) recordCheck() {
	h := &s.hooks
	h.checks.Inc()
	switch s.lastCheck.Result {
	case Sat:
		h.sat.Inc()
	case Unsat:
		h.unsat.Inc()
	default:
		h.unknown.Inc()
	}
	d := s.lastCheck.Search
	h.conflicts.Add(d.Conflicts)
	h.propagations.Add(d.Propagations)
	h.decisions.Add(d.Decisions)
	h.restarts.Add(d.Restarts)
	h.learned.Add(d.Learned)
	h.blastNs.Add(s.lastCheck.BlastTime.Nanoseconds())
	h.searchNs.Add(s.lastCheck.SearchTime.Nanoseconds())
	h.checkConflicts.Observe(d.Conflicts)
	h.checkNs.Observe(s.lastCheck.BlastTime.Nanoseconds() + s.lastCheck.SearchTime.Nanoseconds())
	h.cnfVars.Set(int64(s.sat.NumVars()))
	h.cnfClauses.Set(int64(s.sat.NumClauses()))
	if gh := s.ctx.GateHits(); gh != s.lastGateHits {
		h.gateHits.Add(gh - s.lastGateHits)
		s.lastGateHits = gh
	}
}

// LastCheckStats returns the per-query statistics of the most recent
// Check call: snapshot deltas, never cumulative totals, so two sequential
// checks on one solver report independent work.
func (s *Solver) LastCheckStats() CheckStats { return s.lastCheck }

// UnsatCore returns, after an Unsat Check, a subset of the assumption
// terms sufficient for unsatisfiability. The slice is valid until the next
// Check.
func (s *Solver) UnsatCore() []*smt.Term { return s.lastCore }

// Model returns, after a Sat Check, an environment assigning every
// variable the solver has seen. Variables the circuit left unconstrained
// get whatever phase the SAT solver chose.
func (s *Solver) Model() smt.Env {
	env := make(smt.Env, len(s.vars))
	for v := range s.vars {
		env[v.Name()] = s.ctx.ModelValue(v)
	}
	return env
}

// Value evaluates t under the current model.
func (s *Solver) Value(t *smt.Term) *big.Int {
	return smt.Eval(t, s.Model())
}

// ValueBool evaluates boolean t under the current model.
func (s *Solver) ValueBool(t *smt.Term) bool {
	return smt.EvalBool(t, s.Model())
}

// Stats reports SAT-level statistics.
func (s *Solver) Stats() (vars, clauses int, conflicts, propagations int64) {
	return s.sat.NumVars(), s.sat.NumClauses(), s.sat.Conflicts(), s.sat.Propagations()
}
