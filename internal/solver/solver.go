// Package solver is the Z3-like façade bf4's algorithms program against:
// assert formulas, check satisfiability under assumptions, extract models
// and unsat cores. It glues the hash-consed term layer (internal/smt) to
// the bit-blaster (internal/bitblast) and the CDCL core (internal/sat),
// and is incremental: learned clauses and blasted circuitry persist across
// Check calls, which is what makes the per-bug reachability queries and
// Infer's model/core loop cheap after the first call.
package solver

import (
	"math/big"

	"bf4/internal/bitblast"
	"bf4/internal/sat"
	"bf4/internal/smt"
)

// Result mirrors sat.Result at the SMT level.
type Result = sat.Result

// Re-exported results for call-site readability.
const (
	Sat     = sat.Sat
	Unsat   = sat.Unsat
	Unknown = sat.Unknown
)

// Solver is an incremental QF_BV solver. Create with New; not safe for
// concurrent use.
type Solver struct {
	f    *smt.Factory
	sat  *sat.Solver
	ctx  *bitblast.Context
	vars map[*smt.Term]bool // variables seen so far, for model extraction

	lastCore []*smt.Term
	checks   int
}

// New returns an empty solver over the given term factory.
func New(f *smt.Factory) *Solver {
	s := sat.New()
	return &Solver{
		f:    f,
		sat:  s,
		ctx:  bitblast.New(f, s),
		vars: make(map[*smt.Term]bool),
	}
}

// Factory returns the term factory this solver builds on.
func (s *Solver) Factory() *smt.Factory { return s.f }

// NumChecks returns the number of Check calls made, a useful statistic for
// the evaluation harness.
func (s *Solver) NumChecks() int { return s.checks }

// SetConflictBudget bounds each subsequent Check call to approximately n
// conflicts; 0 removes the bound. Budgeted checks may return Unknown.
func (s *Solver) SetConflictBudget(n int64) { s.sat.Budget.Conflicts = n }

func (s *Solver) registerVars(t *smt.Term) {
	for _, v := range t.Vars(nil) {
		if s.vars[v] {
			continue
		}
		s.vars[v] = true
		// Blast the variable now so that model extraction always works,
		// even if simplification erased it from the final circuit.
		if v.Sort().IsBool() {
			s.ctx.Literal(v)
		} else {
			s.ctx.Bits(v)
		}
	}
}

// Assert permanently adds t to the solver's constraint set.
func (s *Solver) Assert(t *smt.Term) {
	s.registerVars(t)
	s.ctx.AssertTrue(t)
}

// Check determines satisfiability of the asserted formulas together with
// the given assumptions. Unlike Assert, assumptions hold only for this
// call. After Unsat, UnsatCore returns the subset of assumptions used.
func (s *Solver) Check(assumptions ...*smt.Term) Result {
	s.checks++
	lits := make([]sat.Lit, 0, len(assumptions))
	byLit := make(map[sat.Lit]*smt.Term, len(assumptions))
	for _, a := range assumptions {
		if a.IsTrue() {
			continue
		}
		s.registerVars(a)
		l := s.ctx.Literal(a)
		if _, dup := byLit[l]; !dup {
			byLit[l] = a
			lits = append(lits, l)
		}
	}
	res := s.sat.Solve(lits...)
	if res == Unsat {
		s.lastCore = s.lastCore[:0]
		for _, l := range s.sat.FailedAssumptions() {
			if t, ok := byLit[l]; ok {
				s.lastCore = append(s.lastCore, t)
			}
		}
	}
	return res
}

// UnsatCore returns, after an Unsat Check, a subset of the assumption
// terms sufficient for unsatisfiability. The slice is valid until the next
// Check.
func (s *Solver) UnsatCore() []*smt.Term { return s.lastCore }

// Model returns, after a Sat Check, an environment assigning every
// variable the solver has seen. Variables the circuit left unconstrained
// get whatever phase the SAT solver chose.
func (s *Solver) Model() smt.Env {
	env := make(smt.Env, len(s.vars))
	for v := range s.vars {
		env[v.Name()] = s.ctx.ModelValue(v)
	}
	return env
}

// Value evaluates t under the current model.
func (s *Solver) Value(t *smt.Term) *big.Int {
	return smt.Eval(t, s.Model())
}

// ValueBool evaluates boolean t under the current model.
func (s *Solver) ValueBool(t *smt.Term) bool {
	return smt.EvalBool(t, s.Model())
}

// Stats reports SAT-level statistics.
func (s *Solver) Stats() (vars, clauses int, conflicts, propagations int64) {
	return s.sat.NumVars(), s.sat.NumClauses(), s.sat.Conflicts(), s.sat.Propagations()
}
