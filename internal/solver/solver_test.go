package solver

import (
	"math/rand"
	"testing"

	"bf4/internal/smt"
)

func TestAssertCheckModel(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	a, b := f.BVVar("a", 8), f.BVVar("b", 8)
	s.Assert(f.Eq(f.Add(a, b), f.BVConst64(10, 8)))
	s.Assert(f.Ult(a, b))
	if res := s.Check(); res != Sat {
		t.Fatalf("got %v, want Sat", res)
	}
	m := s.Model()
	av, bv := m["a"].Int64(), m["b"].Int64()
	if (av+bv)%256 != 10 || av >= bv {
		t.Fatalf("model a=%d b=%d violates constraints", av, bv)
	}
	if !s.ValueBool(f.Ult(a, b)) {
		t.Fatalf("ValueBool inconsistent with model")
	}
}

func TestCheckWithAssumptions(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	x := f.BVVar("x", 4)
	s.Assert(f.Ult(x, f.BVConst64(8, 4)))
	big := f.Ugt(x, f.BVConst64(9, 4))
	if res := s.Check(big); res != Unsat {
		t.Fatalf("x<8 && x>9: got %v", res)
	}
	// Assumptions don't stick.
	if res := s.Check(); res != Sat {
		t.Fatalf("after retracting assumption: got %v", res)
	}
	small := f.Ult(x, f.BVConst64(2, 4))
	if res := s.Check(small); res != Sat {
		t.Fatalf("x<2: got %v", res)
	}
	if v := s.Model()["x"].Int64(); v >= 2 {
		t.Fatalf("model x=%d, want <2", v)
	}
}

func TestUnsatCoreSubset(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	x := f.BVVar("x", 8)
	a1 := f.Ult(x, f.BVConst64(5, 8))  // x < 5
	a2 := f.Ugt(x, f.BVConst64(10, 8)) // x > 10 — conflicts with a1
	a3 := f.Eq(f.BVAnd(x, f.BVConst64(1, 8)), f.BVConst64(0, 8))
	if res := s.Check(a1, a2, a3); res != Unsat {
		t.Fatalf("got %v, want Unsat", res)
	}
	core := s.UnsatCore()
	has := map[*smt.Term]bool{}
	for _, c := range core {
		has[c] = true
	}
	if !has[a1] || !has[a2] {
		t.Fatalf("core %v must contain both conflicting assumptions", core)
	}
	// Core must itself be unsat.
	if res := s.Check(core...); res != Unsat {
		t.Fatalf("core re-check: got %v", res)
	}
}

func TestModelCoversAllSeenVars(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	a := f.BVVar("a", 8)
	p, q := f.BoolVar("p"), f.BoolVar("q")
	// Even unconstrained-after-solving variables must get model values.
	s.Assert(f.Or(p, q))
	s.Assert(f.Eq(a, f.BVConst64(42, 8)))
	if s.Check() != Sat {
		t.Fatal("want Sat")
	}
	m := s.Model()
	if m["a"] == nil || m["a"].Int64() != 42 {
		t.Fatalf("model missing or wrong a: %v", m["a"])
	}
	if m["p"] == nil || m["q"] == nil {
		t.Fatalf("model must assign p and q")
	}
	if m["p"].Sign() == 0 && m["q"].Sign() == 0 {
		t.Fatalf("model violates p || q")
	}
}

func TestIncrementalAccumulation(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	x := f.BVVar("x", 8)
	for i := 0; i < 8; i++ {
		s.Assert(f.Not(f.Eq(x, f.BVConst64(int64(i), 8))))
		if res := s.Check(); res != Sat {
			t.Fatalf("step %d: got %v", i, res)
		}
		if v := s.Model()["x"].Int64(); v < int64(i+1) {
			t.Fatalf("step %d: model x=%d excluded", i, v)
		}
	}
	s.Assert(f.Ult(x, f.BVConst64(8, 8)))
	if res := s.Check(); res != Unsat {
		t.Fatalf("excluded 0..7 and x<8: got %v", res)
	}
}

// TestInferShapedLoop mimics the Infer algorithm's solver usage: a direct
// solver enumerates models of BUG, a dual solver holds OK and is queried
// with assumption atoms, unsat cores drive generalization.
func TestInferShapedLoop(t *testing.T) {
	f := smt.NewFactory()
	// BUG: hit && !valid && mask != 0 ; OK: !hit || valid || mask == 0
	hit := f.BoolVar("hit")
	valid := f.BoolVar("valid")
	mask := f.BVVar("mask", 8)
	bug := f.And(hit, f.Not(valid), f.Not(f.Eq(mask, f.BVConst64(0, 8))))
	ok := f.Not(bug)

	direct := New(f)
	direct.Assert(bug)
	dual := New(f)
	dual.Assert(ok)

	atoms := []*smt.Term{hit, valid, f.Eq(mask, f.BVConst64(0, 8))}
	iterations := 0
	for direct.Check() == Sat {
		iterations++
		if iterations > 20 {
			t.Fatal("Infer-shaped loop did not converge")
		}
		m := direct.Model()
		var assumptions []*smt.Term
		for _, p := range atoms {
			if smt.EvalBool(p, m) {
				assumptions = append(assumptions, p)
			} else {
				assumptions = append(assumptions, f.Not(p))
			}
		}
		if dual.Check(assumptions...) == Unsat {
			core := dual.UnsatCore()
			direct.Assert(f.Not(f.And(core...)))
		} else {
			direct.Assert(f.Not(f.And(assumptions...)))
		}
	}
	// The loop must have blocked the entire BUG region.
	if direct.Check() != Unsat {
		t.Fatal("BUG region not exhausted")
	}
}

func TestRandomizedEquivalenceQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := smt.NewFactory()
	for iter := 0; iter < 20; iter++ {
		s := New(f)
		w := 4 + rng.Intn(5)
		x := f.BVVar("x", w)
		k := int64(rng.Intn(1 << w))
		// x + k - k == x is valid: its negation must be unsat.
		kc := f.BVConst64(k, w)
		s.Assert(f.Not(f.Eq(f.Sub(f.Add(x, kc), kc), x)))
		if res := s.Check(); res != Unsat {
			t.Fatalf("iter %d: got %v, want Unsat", iter, res)
		}
	}
}

func TestStatsAndChecks(t *testing.T) {
	f := smt.NewFactory()
	s := New(f)
	x := f.BVVar("x", 8)
	s.Assert(f.Ult(x, f.BVConst64(100, 8)))
	s.Check()
	s.Check(f.Ugt(x, f.BVConst64(50, 8)))
	if s.NumChecks() != 2 {
		t.Fatalf("NumChecks = %d, want 2", s.NumChecks())
	}
	vars, clauses, _, props := s.Stats()
	if vars == 0 || clauses == 0 {
		t.Fatalf("stats look empty: vars=%d clauses=%d", vars, clauses)
	}
	_ = props
}

func BenchmarkIncrementalReachQueries(b *testing.B) {
	// Shape of bf4's bug reachability phase: one shared formula, many
	// assumption-only checks.
	f := smt.NewFactory()
	s := New(f)
	x := f.BVVar("x", 16)
	y := f.BVVar("y", 16)
	s.Assert(f.Eq(f.Add(x, y), f.BVConst64(5000, 16)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cond := f.Eq(x, f.BVConst64(int64(i%4096), 16))
		if s.Check(cond) != Sat {
			b.Fatal("want Sat")
		}
	}
}
