package p4runtime

import (
	"bufio"
	"encoding/json"
	"net"
	"testing"

	"bf4/internal/shim"
	"bf4/internal/spec"
)

// startRawServer runs a server over a trivial single-table spec and
// returns a raw connection for protocol-level testing.
func startRawServer(t *testing.T) (net.Conn, func()) {
	t.Helper()
	file := &spec.File{
		Program: "t",
		Tables: []*spec.TableSchema{{
			Name:   "t",
			Prefix: "pcn_t$0",
			Keys:   []spec.KeySchema{{Path: "x", MatchKind: "exact", Width: 8}},
			Actions: []*spec.ActionSchema{
				{Name: "NoAction", Index: 0},
				{Name: "bad", Index: 1, Buggy: true},
			},
			Default: "NoAction",
		}},
	}
	sh, err := shim.New(file)
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Shim: sh}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return conn, func() { conn.Close(); srv.Close() }
}

func roundTripRaw(t *testing.T, conn net.Conn, req string) *Response {
	t.Helper()
	if _, err := conn.Write([]byte(req + "\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}

func TestUnknownRequestType(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	resp := roundTripRaw(t, conn, `{"id":1,"type":"frobnicate"}`)
	if resp.OK || resp.Error == "" {
		t.Fatalf("unknown request accepted: %+v", resp)
	}
	if resp.ID != 1 {
		t.Fatalf("response id = %d", resp.ID)
	}
}

func TestMissingEntry(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	resp := roundTripRaw(t, conn, `{"id":2,"type":"insert","table":"t"}`)
	if resp.OK {
		t.Fatal("insert without entry accepted")
	}
}

func TestBadIntegerValue(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	resp := roundTripRaw(t, conn,
		`{"id":3,"type":"insert","table":"t","entry":{"keys":[{"value":"zap"}],"action":"NoAction"}}`)
	if resp.OK {
		t.Fatal("bad integer accepted")
	}
}

func TestPacketWithoutProgram(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	resp := roundTripRaw(t, conn, `{"id":4,"type":"packet","packet":{"x":"1"}}`)
	if resp.OK {
		t.Fatal("packet injection without a program accepted")
	}
}

func TestBuggyDefaultRejectedOverWire(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	resp := roundTripRaw(t, conn,
		`{"id":5,"type":"set_default","table":"t","entry":{"keys":[],"action":"bad"}}`)
	if resp.OK {
		t.Fatal("buggy default action accepted")
	}
	resp = roundTripRaw(t, conn,
		`{"id":6,"type":"set_default","table":"t","entry":{"keys":[],"action":"NoAction"}}`)
	if !resp.OK {
		t.Fatalf("clean default rejected: %s", resp.Error)
	}
}

func TestMalformedJSONClosesConnection(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	if _, err := conn.Write([]byte("{nope\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the server to drop the connection on malformed JSON")
	}
}
