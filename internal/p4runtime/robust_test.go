package p4runtime

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"bf4/internal/shim"
	"bf4/internal/spec"
)

func rawSpec() *spec.File {
	return &spec.File{
		Program: "t",
		Tables: []*spec.TableSchema{{
			Name:   "t",
			Prefix: "pcn_t$0",
			Keys:   []spec.KeySchema{{Path: "x", MatchKind: "exact", Width: 8}},
			Actions: []*spec.ActionSchema{
				{Name: "NoAction", Index: 0},
				{Name: "bad", Index: 1, Buggy: true},
			},
			Default: "NoAction",
		}},
	}
}

// newRawServer runs a server over a trivial single-table spec for
// protocol-level testing.
func newRawServer(t *testing.T, cfg func(*Server)) (*Server, *shim.Shim, string) {
	t.Helper()
	sh, err := shim.New(rawSpec())
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Shim: sh}
	if cfg != nil {
		cfg(srv)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, sh, ln.Addr().String()
}

func startRawServer(t *testing.T) (net.Conn, func()) {
	t.Helper()
	_, _, addr := newRawServer(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn, func() { conn.Close() }
}

func roundTripRaw(t *testing.T, conn net.Conn, req string) *Response {
	t.Helper()
	if _, err := conn.Write([]byte(req + "\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}

func TestUnknownRequestType(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	resp := roundTripRaw(t, conn, `{"id":1,"type":"frobnicate"}`)
	if resp.OK || resp.Error == "" {
		t.Fatalf("unknown request accepted: %+v", resp)
	}
	if resp.ID != 1 {
		t.Fatalf("response id = %d", resp.ID)
	}
}

func TestMissingEntry(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	resp := roundTripRaw(t, conn, `{"id":2,"type":"insert","table":"t"}`)
	if resp.OK {
		t.Fatal("insert without entry accepted")
	}
}

func TestBadIntegerValue(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	resp := roundTripRaw(t, conn,
		`{"id":3,"type":"insert","table":"t","entry":{"keys":[{"value":"zap"}],"action":"NoAction"}}`)
	if resp.OK {
		t.Fatal("bad integer accepted")
	}
}

func TestNegativeValueRejected(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	resp := roundTripRaw(t, conn,
		`{"id":4,"type":"insert","table":"t","entry":{"keys":[{"value":"-7"}],"action":"NoAction"}}`)
	if resp.OK {
		t.Fatal("negative key value accepted")
	}
	if !strings.Contains(resp.Error, "negative") {
		t.Fatalf("unhelpful error: %q", resp.Error)
	}
}

func TestAbsurdlyWideValueRejected(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	wide := strings.Repeat("9", 2000)
	resp := roundTripRaw(t, conn,
		`{"id":5,"type":"insert","table":"t","entry":{"keys":[{"value":"`+wide+`"}],"action":"NoAction"}}`)
	if resp.OK {
		t.Fatal("2000-digit key value accepted")
	}
}

func TestNegativeMaskSentinelStillAllowed(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	resp := roundTripRaw(t, conn,
		`{"id":6,"type":"validate","table":"t","entry":{"keys":[{"value":"1","mask":"-1"}],"action":"NoAction"}}`)
	if !resp.OK {
		t.Fatalf("full-mask sentinel rejected: %s", resp.Error)
	}
}

func TestPacketWithoutProgram(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	resp := roundTripRaw(t, conn, `{"id":7,"type":"packet","packet":{"x":"1"}}`)
	if resp.OK {
		t.Fatal("packet injection without a program accepted")
	}
}

func TestBuggyDefaultRejectedOverWire(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	resp := roundTripRaw(t, conn,
		`{"id":8,"type":"set_default","table":"t","entry":{"keys":[],"action":"bad"}}`)
	if resp.OK {
		t.Fatal("buggy default action accepted")
	}
	resp = roundTripRaw(t, conn,
		`{"id":9,"type":"set_default","table":"t","entry":{"keys":[],"action":"NoAction"}}`)
	if !resp.OK {
		t.Fatalf("clean default rejected: %s", resp.Error)
	}
}

func TestMalformedJSONReturnsErrorAndKeepsConnection(t *testing.T) {
	conn, stop := startRawServer(t)
	defer stop()
	r := bufio.NewReader(conn)
	if _, err := conn.Write([]byte("{nope\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(r).Decode(&resp); err != nil {
		t.Fatalf("no error response on malformed JSON: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "malformed") {
		t.Fatalf("unexpected response: %+v", resp)
	}
	// Newline framing resyncs: the connection is still usable.
	if _, err := conn.Write([]byte(`{"id":10,"type":"stats"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r).Decode(&resp); err != nil {
		t.Fatalf("connection dead after malformed frame: %v", err)
	}
	if !resp.OK || resp.ID != 10 {
		t.Fatalf("stats after malformed frame: %+v", resp)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	_, _, addr := newRawServer(t, func(s *Server) { s.MaxFrameBytes = 512 })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	huge := `{"id":1,"type":"insert","junk":"` + strings.Repeat("x", 4096) + `"}` + "\n"
	if _, err := conn.Write([]byte(huge)); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	var resp Response
	if err := json.NewDecoder(r).Decode(&resp); err != nil {
		t.Fatalf("no error response on oversized frame: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "frame") {
		t.Fatalf("unexpected response: %+v", resp)
	}
	// Framing is unrecoverable past the cap, so the server closes.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := r.Read(buf); err == nil {
		t.Fatal("connection still open after frame-limit violation")
	}
}

func TestConnectionCap(t *testing.T) {
	_, _, addr := newRawServer(t, func(s *Server) { s.MaxConns = 1 })
	conn1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	// A round trip guarantees conn1 is registered before we dial again.
	if resp := roundTripRaw(t, conn1, `{"id":1,"type":"stats"}`); !resp.OK {
		t.Fatalf("stats failed: %+v", resp)
	}
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(conn2)).Decode(&resp); err != nil {
		t.Fatalf("no rejection from over-cap connection: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "connection limit") {
		t.Fatalf("unexpected response: %+v", resp)
	}
	// conn1 keeps working.
	if resp := roundTripRaw(t, conn1, `{"id":2,"type":"stats"}`); !resp.OK {
		t.Fatalf("capped server broke the admitted connection: %+v", resp)
	}
}

func TestDedupOverWire(t *testing.T) {
	_, sh, addr := newRawServer(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := `{"id":1,"client":"c1","type":"insert","table":"t","entry":{"keys":[{"value":"3"}],"action":"NoAction"}}`
	for i := 0; i < 3; i++ {
		if resp := roundTripRaw(t, conn, req); !resp.OK {
			t.Fatalf("retry %d failed: %+v", i, resp)
		}
	}
	if n := sh.ShadowSize("t"); n != 1 {
		t.Fatalf("retried insert applied %d times", n)
	}
	// A different client with the same request ID is a distinct mutation.
	req2 := `{"id":1,"client":"c2","type":"insert","table":"t","entry":{"keys":[{"value":"4"}],"action":"NoAction"}}`
	if resp := roundTripRaw(t, conn, req2); !resp.OK {
		t.Fatalf("second client rejected: %+v", resp)
	}
	if n := sh.ShadowSize("t"); n != 2 {
		t.Fatalf("shadow size = %d, want 2", n)
	}
}

func TestBatchOverWire(t *testing.T) {
	_, sh, addr := newRawServer(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Second update names an unknown table: the whole batch rolls back.
	bad := `{"id":1,"type":"batch","updates":[` +
		`{"op":"insert","table":"t","entry":{"keys":[{"value":"1"}],"action":"NoAction"}},` +
		`{"op":"insert","table":"ghost","entry":{"keys":[{"value":"2"}],"action":"NoAction"}}]}`
	resp := roundTripRaw(t, conn, bad)
	if resp.OK {
		t.Fatal("batch with unknown table accepted")
	}
	if resp.FailedIndex == nil || *resp.FailedIndex != 1 {
		t.Fatalf("FailedIndex = %v, want 1", resp.FailedIndex)
	}
	if n := sh.ShadowSize("t"); n != 0 {
		t.Fatalf("rolled-back batch left %d entries", n)
	}
	good := `{"id":2,"type":"batch","updates":[` +
		`{"op":"insert","table":"t","entry":{"keys":[{"value":"1"}],"action":"NoAction"}},` +
		`{"op":"set_default","table":"t","entry":{"keys":[],"action":"NoAction"}}]}`
	if resp := roundTripRaw(t, conn, good); !resp.OK {
		t.Fatalf("clean batch rejected: %+v", resp)
	}
	if n := sh.ShadowSize("t"); n != 1 {
		t.Fatalf("shadow size = %d, want 1", n)
	}
}

func TestShutdownDrains(t *testing.T) {
	srv, _, addr := newRawServer(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if resp := roundTripRaw(t, conn, `{"id":1,"type":"stats"}`); !resp.OK {
		t.Fatalf("stats failed: %+v", resp)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	// The idle connection was woken and closed.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after shutdown")
	}
	// No new connections are served.
	if c2, err := net.Dial("tcp", addr); err == nil {
		c2.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := c2.Read(buf); err == nil {
			t.Fatal("server still answering after shutdown")
		}
		c2.Close()
	}
}
