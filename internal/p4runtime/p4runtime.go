// Package p4runtime implements a minimal P4Runtime-flavoured control
// protocol over TCP with newline-delimited JSON framing. The server
// embeds bf4's sanitization shim (paper §4.4): every table write is
// validated against the inferred controller assertions before it reaches
// the (simulated) dataplane; rejected updates return an exception to the
// controller, exactly the failure mode the paper argues controllers
// already handle (duplicate-rule errors). The server can also inject test
// packets, executing them on the dataplane interpreter against the
// current shadow snapshot.
//
// The layer is built to run as always-on control-plane infrastructure:
// the server enforces per-connection read/write deadlines, a maximum
// frame size and a connection cap, answers malformed frames with an
// error Response instead of a silent close, recovers per-connection
// panics, and drains in-flight requests on Shutdown. The client
// reconnects automatically with exponential backoff and jitter, applies
// per-call timeouts, and retries idempotently: every request carries a
// client ID + request ID, and the shim keeps a dedup window of recently
// applied IDs so a retried insert after an ambiguous failure is not
// double-applied.
package p4runtime

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	mrand "math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bf4/internal/dataplane"
	"bf4/internal/ir"
	"bf4/internal/obs"
	"bf4/internal/shim"
)

// MaxValueBits bounds wire integers; anything wider is rejected before
// it can reach the bitvector layer.
const MaxValueBits = 4096

// KeyMatchMsg is the wire form of a key match. Values are decimal
// strings (bitvector widths exceed int64).
type KeyMatchMsg struct {
	Value     string `json:"value"`
	Mask      string `json:"mask,omitempty"`
	PrefixLen *int   `json:"prefix_len,omitempty"`
}

// EntryMsg is the wire form of a table entry.
type EntryMsg struct {
	Keys     []KeyMatchMsg `json:"keys"`
	Action   string        `json:"action"`
	Params   []string      `json:"params,omitempty"`
	Priority int           `json:"priority,omitempty"`
}

// UpdateMsg is one element of an atomic batch.
type UpdateMsg struct {
	// Op is "insert" or "set_default".
	Op    string    `json:"op"`
	Table string    `json:"table"`
	Entry *EntryMsg `json:"entry"`
}

// Request is one controller→shim message.
type Request struct {
	ID int64 `json:"id"`
	// Client identifies the sender for idempotent retries: the shim
	// dedups mutations on (client, id).
	Client string `json:"client,omitempty"`
	// Switch routes the request to one shard of a fleet server. Empty
	// selects the server's DefaultSwitch (or the single embedded shim).
	Switch string            `json:"switch,omitempty"`
	Type   string            `json:"type"` // insert | set_default | validate | batch | packet | stats | health
	Table  string            `json:"table,omitempty"`
	Entry  *EntryMsg         `json:"entry,omitempty"`
	Update []UpdateMsg       `json:"updates,omitempty"`
	Packet map[string]string `json:"packet,omitempty"`
}

// Response is one shim→controller message.
type Response struct {
	ID    int64  `json:"id"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// Retryable marks a failure that is expected to clear (shard down or
	// restoring): the client should back off and retry the same request —
	// its idempotency key makes the retry safe.
	Retryable bool `json:"retryable,omitempty"`

	// FailedIndex reports which update of a rejected batch failed.
	FailedIndex *int `json:"failed_index,omitempty"`

	// Shards is the health-request result: switch id → lifecycle state.
	Shards map[string]string `json:"shards,omitempty"`

	// Packet-injection results.
	EgressSpec *int64 `json:"egress_spec,omitempty"`
	Bug        bool   `json:"bug,omitempty"`
	BugKind    string `json:"bug_kind,omitempty"`

	// Stats results.
	Validated int `json:"validated,omitempty"`
	Rejected  int `json:"rejected,omitempty"`
}

func parseBig(s string) (*big.Int, error) {
	if s == "" {
		return big.NewInt(0), nil
	}
	if len(s) > MaxValueBits/3 {
		return nil, fmt.Errorf("p4runtime: integer literal of %d chars exceeds the wire limit", len(s))
	}
	v, ok := new(big.Int).SetString(s, 0)
	if !ok {
		return nil, fmt.Errorf("p4runtime: bad integer %q", s)
	}
	if v.Sign() < 0 {
		return nil, fmt.Errorf("p4runtime: negative value %q not allowed", s)
	}
	if v.BitLen() > MaxValueBits {
		return nil, fmt.Errorf("p4runtime: value %q is %d bits wide, limit %d", s, v.BitLen(), MaxValueBits)
	}
	return v, nil
}

// ParseValue parses a wire integer (decimal, 0x…, 0b…), rejecting
// negative or absurdly wide values with a clear error.
func ParseValue(s string) (*big.Int, error) { return parseBig(s) }

// parseMask parses a ternary mask. "-1" is the established dataplane
// sentinel for "match every bit" (two's-complement all-ones at any
// width), so it is the one negative value allowed on the wire.
func parseMask(s string) (*big.Int, error) {
	if s == "-1" {
		return big.NewInt(-1), nil
	}
	return parseBig(s)
}

// DecodeEntry converts a wire entry to a dataplane entry.
func DecodeEntry(m *EntryMsg) (*dataplane.Entry, error) {
	e := &dataplane.Entry{Action: m.Action, Priority: m.Priority}
	for _, km := range m.Keys {
		v, err := parseBig(km.Value)
		if err != nil {
			return nil, err
		}
		dk := dataplane.KeyMatch{Value: v, PrefixLen: -1}
		if km.Mask != "" {
			mv, err := parseMask(km.Mask)
			if err != nil {
				return nil, err
			}
			dk.Mask = mv
		}
		if km.PrefixLen != nil {
			dk.PrefixLen = *km.PrefixLen
		}
		e.Keys = append(e.Keys, dk)
	}
	for _, p := range m.Params {
		v, err := parseBig(p)
		if err != nil {
			return nil, err
		}
		e.Params = append(e.Params, v)
	}
	return e, nil
}

// EncodeEntry converts a dataplane entry to wire form.
func EncodeEntry(e *dataplane.Entry) *EntryMsg {
	m := &EntryMsg{Action: e.Action, Priority: e.Priority}
	for _, k := range e.Keys {
		km := KeyMatchMsg{Value: k.Value.String()}
		if k.Mask != nil {
			km.Mask = k.Mask.String()
		}
		if k.PrefixLen >= 0 {
			pl := k.PrefixLen
			km.PrefixLen = &pl
		}
		m.Keys = append(m.Keys, km)
	}
	for _, p := range e.Params {
		m.Params = append(m.Params, p.String())
	}
	return m
}

// shimLike is the validation surface dispatch runs against: either one
// embedded *shim.Shim or one *shim.Shard of a fleet.
type shimLike interface {
	Validate(*shim.Update) error
	ApplyWithKey(string, *shim.Update) error
	ApplyBatchWithKey(string, []*shim.Update) error
	Snapshot() *dataplane.Snapshot
	Stats() shim.Stats
}

// Server runs the shim behind the wire protocol.
type Server struct {
	Shim *shim.Shim
	// Fleet, when set, serves many switches: requests route to the shard
	// named by their Switch field (DefaultSwitch when empty) and Shim is
	// ignored. Shard-down failures return retryable error responses.
	Fleet *shim.Fleet
	// DefaultSwitch names the shard for requests that omit Switch.
	DefaultSwitch string
	// Prog, when set, enables packet injection against the shadow
	// snapshot.
	Prog *ir.Program

	// ReadTimeout bounds each frame read; an idle or stalled peer is
	// disconnected after it (default 5m, negative disables).
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write (default 30s, negative
	// disables).
	WriteTimeout time.Duration
	// MaxFrameBytes caps one request frame (default 1 MiB).
	MaxFrameBytes int
	// MaxConns caps concurrent connections; extra connections receive an
	// error Response and are closed (default 0 = unlimited).
	MaxConns int
	// Obs, when non-nil, publishes server metrics: request counts and
	// latency (bf4_p4rt_requests_total, bf4_p4rt_request_errors_total,
	// bf4_p4rt_request_ns) and the live connection gauge
	// (bf4_p4rt_connections). Attach the same registry to Shim via
	// SetObs for the full picture. All obs calls are nil-safe.
	Obs *obs.Registry

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
	closed bool
}

func (s *Server) readTimeout() time.Duration {
	if s.ReadTimeout == 0 {
		return 5 * time.Minute
	}
	if s.ReadTimeout < 0 {
		return 0
	}
	return s.ReadTimeout
}

func (s *Server) writeTimeout() time.Duration {
	if s.WriteTimeout == 0 {
		return 30 * time.Second
	}
	if s.WriteTimeout < 0 {
		return 0
	}
	return s.WriteTimeout
}

func (s *Server) maxFrame() int {
	if s.MaxFrameBytes <= 0 {
		return 1 << 20
	}
	return s.MaxFrameBytes
}

func (s *Server) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Serve accepts connections until the listener closes. After Shutdown it
// returns nil.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	if s.conns == nil {
		s.conns = map[net.Conn]bool{}
	}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closing() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		if s.MaxConns > 0 && len(s.conns) >= s.MaxConns {
			s.mu.Unlock()
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			json.NewEncoder(conn).Encode(&Response{OK: false, Error: "p4runtime: connection limit reached"})
			conn.Close()
			continue
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		s.Obs.Gauge("bf4_p4rt_connections").Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener immediately without draining connections; use
// Shutdown for a graceful stop.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// Shutdown stops accepting, lets every in-flight request finish, then
// closes the connections. If ctx expires first the remaining
// connections are closed forcibly and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Wake idle readers; a handler mid-dispatch finishes its current
	// request, writes the response, then exits on the expired deadline.
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
		return ctx.Err()
	}
}

var errFrameTooLarge = errors.New("p4runtime: frame exceeds size limit")

// readFrame reads one newline-delimited frame, enforcing the size cap.
// A partial frame cut off by EOF is an error, never a request.
func readFrame(r *bufio.Reader, max int) ([]byte, error) {
	var buf []byte
	for {
		chunk, err := r.ReadSlice('\n')
		buf = append(buf, chunk...)
		if len(buf) > max {
			return nil, errFrameTooLarge
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			return nil, err
		}
		return buf, nil
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		// Per-connection panic recovery: a poisoned connection dies, the
		// server keeps serving everyone else.
		recover()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.Obs.Gauge("bf4_p4rt_connections").Add(-1)
	}()
	r := bufio.NewReaderSize(conn, 4096)
	enc := json.NewEncoder(conn)
	for !s.closing() {
		if d := s.readTimeout(); d > 0 {
			conn.SetReadDeadline(time.Now().Add(d))
		}
		frame, err := readFrame(r, s.maxFrame())
		if err == errFrameTooLarge {
			// The framing is lost beyond recovery: answer, then close.
			s.writeResponse(conn, enc, &Response{OK: false, Error: errFrameTooLarge.Error()})
			return
		}
		if err != nil {
			return
		}
		if len(bytes.TrimSpace(frame)) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(frame, &req); err != nil {
			// Newline framing survives malformed JSON: report the error
			// on the wire and keep the connection.
			if !s.writeResponse(conn, enc, &Response{OK: false,
				Error: "p4runtime: malformed request: " + err.Error()}) {
				return
			}
			continue
		}
		if !s.writeResponse(conn, enc, s.dispatchSafe(&req)) {
			return
		}
	}
}

func (s *Server) writeResponse(conn net.Conn, enc *json.Encoder, resp *Response) bool {
	if d := s.writeTimeout(); d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	return enc.Encode(resp) == nil
}

// dispatchSafe turns a dispatch panic into an error Response and records
// request metrics (count, error count, latency) when Obs is attached.
func (s *Server) dispatchSafe(req *Request) (resp *Response) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			resp = &Response{ID: req.ID, OK: false,
				Error: fmt.Sprintf("p4runtime: internal error: %v", r)}
		}
		s.Obs.Counter("bf4_p4rt_requests_total").Inc()
		if resp != nil && !resp.OK {
			s.Obs.Counter("bf4_p4rt_request_errors_total").Inc()
		}
		s.Obs.Histogram("bf4_p4rt_request_ns", obs.DurationBuckets).Observe(int64(time.Since(start)))
	}()
	return s.dispatch(req)
}

// dedupKey builds the idempotency key for a mutation ("" disables
// dedup for clients that do not identify themselves).
func dedupKey(req *Request) string {
	if req.Client == "" {
		return ""
	}
	return req.Client + ":" + strconv.FormatInt(req.ID, 10)
}

// target resolves the shim a request runs against: the named (or
// default) fleet shard, or the single embedded shim.
func (s *Server) target(req *Request) (shimLike, error) {
	if s.Fleet == nil {
		return s.Shim, nil
	}
	id := req.Switch
	if id == "" {
		id = s.DefaultSwitch
	}
	if id == "" {
		return nil, fmt.Errorf("p4runtime: no switch specified and no default configured")
	}
	sd := s.Fleet.Shard(id)
	if sd == nil {
		return nil, fmt.Errorf("p4runtime: unknown switch %q", id)
	}
	return sd, nil
}

func (s *Server) dispatch(req *Request) *Response {
	resp := &Response{ID: req.ID}
	fail := func(err error) *Response {
		resp.OK = false
		resp.Error = err.Error()
		var sde *shim.ShardDownError
		if errors.As(err, &sde) {
			resp.Retryable = true
		}
		return resp
	}
	if req.Type == "health" {
		resp.OK = true
		if s.Fleet != nil {
			resp.Shards = s.Fleet.Health()
		}
		return resp
	}
	sh, terr := s.target(req)
	if terr != nil {
		return fail(terr)
	}
	switch req.Type {
	case "insert", "validate":
		if req.Entry == nil {
			return fail(fmt.Errorf("p4runtime: missing entry"))
		}
		e, err := DecodeEntry(req.Entry)
		if err != nil {
			return fail(err)
		}
		u := &shim.Update{Table: req.Table, Entry: e}
		if req.Type == "insert" {
			err = sh.ApplyWithKey(dedupKey(req), u)
		} else {
			err = sh.Validate(u)
		}
		if err != nil {
			return fail(err)
		}
		resp.OK = true
	case "set_default":
		if req.Entry == nil {
			return fail(fmt.Errorf("p4runtime: missing entry"))
		}
		e, err := DecodeEntry(req.Entry)
		if err != nil {
			return fail(err)
		}
		err = sh.ApplyWithKey(dedupKey(req), &shim.Update{
			Table:      req.Table,
			SetDefault: &dataplane.DefaultAction{Action: e.Action, Params: e.Params},
		})
		if err != nil {
			return fail(err)
		}
		resp.OK = true
	case "batch":
		if len(req.Update) == 0 {
			return fail(fmt.Errorf("p4runtime: empty batch"))
		}
		updates := make([]*shim.Update, 0, len(req.Update))
		for i, um := range req.Update {
			if um.Entry == nil {
				return fail(fmt.Errorf("p4runtime: batch update %d missing entry", i))
			}
			e, err := DecodeEntry(um.Entry)
			if err != nil {
				return fail(fmt.Errorf("p4runtime: batch update %d: %w", i, err))
			}
			u := &shim.Update{Table: um.Table}
			switch um.Op {
			case "insert":
				u.Entry = e
			case "set_default":
				u.SetDefault = &dataplane.DefaultAction{Action: e.Action, Params: e.Params}
			default:
				return fail(fmt.Errorf("p4runtime: batch update %d has unknown op %q", i, um.Op))
			}
			updates = append(updates, u)
		}
		if err := sh.ApplyBatchWithKey(dedupKey(req), updates); err != nil {
			var be *shim.BatchError
			if errors.As(err, &be) {
				idx := be.Index
				resp.FailedIndex = &idx
			}
			return fail(err)
		}
		resp.OK = true
	case "packet":
		if s.Prog == nil {
			return fail(fmt.Errorf("p4runtime: packet injection not enabled"))
		}
		pkt := dataplane.Packet{}
		for name, val := range req.Packet {
			v, err := parseBig(val)
			if err != nil {
				return fail(err)
			}
			pkt[name] = v
		}
		snap := sh.Snapshot()
		if snap == nil {
			return fail(&shim.ShardDownError{ID: req.Switch, Reason: "no live shadow snapshot"})
		}
		interp := &dataplane.Interp{P: s.Prog, Snapshot: snap, Inputs: pkt}
		tr, err := interp.Run()
		if err != nil {
			return fail(err)
		}
		resp.OK = true
		spec := tr.EgressSpec()
		resp.EgressSpec = &spec
		if tr.Bug() {
			resp.Bug = true
			resp.BugKind = tr.Terminal.Bug.String()
		}
	case "stats":
		st := sh.Stats()
		resp.OK = true
		resp.Validated = st.Validated
		resp.Rejected = st.Rejected
	default:
		return fail(fmt.Errorf("p4runtime: unknown request type %q", req.Type))
	}
	return resp
}

// Options tunes the client's resilience behavior. The zero value gives
// sane production defaults.
type Options struct {
	// CallTimeout bounds one request/response round trip (default 30s).
	CallTimeout time.Duration
	// MaxAttempts is the total number of tries per call, reconnecting
	// between attempts (default 10; 1 disables retries).
	MaxAttempts int
	// BackoffBase is the first retry delay; it doubles per attempt up to
	// BackoffMax, with jitter (defaults 10ms / 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed makes the client ID deterministic (0 = random). Backoff
	// jitter additionally mixes in a process-unique per-client salt, so
	// two clients that share a Seed never back off in lockstep (a fleet
	// of identically-configured controllers must not reconnect as a
	// synchronized herd after a shard restart). Give each client its own
	// Seed regardless: the client ID feeds the idempotency key, and two
	// clients with one ID would dedup against each other's requests.
	Seed int64
	// Switch stamps every request with a target switch for fleet
	// servers (empty uses the server's default).
	Switch string
	// Dialer overrides the transport (e.g. a faultnet.Dialer for chaos
	// tests). The default dials addr over TCP.
	Dialer func() (net.Conn, error)
}

// Client is the controller side of the protocol. Calls are safe for
// concurrent use; each call is retried across reconnects, and because
// every request carries (client ID, request ID) the shim applies a
// retried mutation at most once.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	next int64
	id   string
	opts Options
	rng  *mrand.Rand
	// jrng drives backoff jitter only. It is never shared and never
	// seeded identically across clients (see Options.Seed).
	jrng *mrand.Rand
}

// clientSalt makes every client's jitter stream unique within the
// process, whatever seeds callers pass.
var clientSalt atomic.Int64

// Dial connects to a shim server with default resilience options.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects with explicit resilience options.
func DialOptions(addr string, opts Options) (*Client, error) {
	if opts.Dialer == nil {
		opts.Dialer = func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	c := newClient(opts)
	conn, err := opts.Dialer()
	if err != nil {
		return nil, err
	}
	c.setConn(conn)
	return c, nil
}

// NewClient wraps an established connection. Without a dialer the client
// cannot reconnect, so calls fail fast on transport errors.
func NewClient(conn net.Conn) *Client {
	c := newClient(Options{MaxAttempts: 1})
	c.setConn(conn)
	return c
}

func newClient(opts Options) *Client {
	if opts.CallTimeout == 0 {
		opts.CallTimeout = 30 * time.Second
	}
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 10
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 10 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = time.Second
	}
	seed := opts.Seed
	if seed == 0 {
		var b [8]byte
		rand.Read(b[:])
		for i, x := range b {
			seed |= int64(x) << (8 * i)
		}
		seed &= 1<<62 - 1
	}
	rng := mrand.New(mrand.NewSource(seed))
	var idb [6]byte
	rng.Read(idb[:])
	jseed := int64(uint64(seed) ^ uint64(clientSalt.Add(1))*0x9e3779b97f4a7c15)
	return &Client{
		opts: opts,
		id:   hex.EncodeToString(idb[:]),
		rng:  rng,
		jrng: mrand.New(mrand.NewSource(jseed)),
	}
}

// ID returns the client's wire identity (used for idempotent retries).
func (c *Client) ID() string { return c.id }

func (c *Client) setConn(conn net.Conn) {
	c.conn = conn
	c.enc = json.NewEncoder(conn)
	c.dec = json.NewDecoder(bufio.NewReader(conn))
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// backoffDelay computes the sleep before retry attempt a (a ≥ 1):
// exponential in a, capped, jittered over [cap/2, cap] from the
// client's private jitter stream.
func (c *Client) backoffDelay(a int) time.Duration {
	d := c.opts.BackoffBase << (a - 1)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	return d/2 + time.Duration(c.jrng.Int63n(int64(d/2)+1))
}

// backoff sleeps before retry attempt a; the jitter keeps a fleet of
// reconnecting controllers spread out instead of herding.
func (c *Client) backoff(a int) {
	time.Sleep(c.backoffDelay(a))
}

func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req.ID = c.next
	req.Client = c.id
	if req.Switch == "" {
		req.Switch = c.opts.Switch
	}

	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.backoff(attempt)
		}
		if c.conn == nil {
			if c.opts.Dialer == nil {
				break
			}
			conn, err := c.opts.Dialer()
			if err != nil {
				lastErr = err
				continue
			}
			c.setConn(conn)
		}
		resp, err := c.try(req)
		if err == nil {
			if !resp.OK && resp.Retryable && attempt+1 < c.opts.MaxAttempts {
				// Transient server-side failure (shard down/restoring):
				// back off and resend the same request — the idempotency
				// key makes the retry at-most-once even if the first
				// attempt was queued and later applied.
				lastErr = fmt.Errorf("p4runtime: retryable: %s", resp.Error)
				continue
			}
			return resp, nil
		}
		lastErr = err
		c.conn.Close()
		c.conn = nil
		if c.opts.Dialer == nil {
			break
		}
	}
	return nil, fmt.Errorf("p4runtime: %s request failed after %d attempts: %w",
		req.Type, c.opts.MaxAttempts, lastErr)
}

// try performs one round trip on the current connection.
func (c *Client) try(req *Request) (*Response, error) {
	if d := c.opts.CallTimeout; d > 0 {
		c.conn.SetDeadline(time.Now().Add(d))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	for {
		var resp Response
		if err := c.dec.Decode(&resp); err != nil {
			return nil, err
		}
		switch {
		case resp.ID == req.ID:
			return &resp, nil
		case resp.ID == 0 && !resp.OK:
			// Connection-level error (frame limit, conn cap, malformed
			// frame): surface it; the caller reconnects and retries.
			return nil, fmt.Errorf("p4runtime: server error: %s", resp.Error)
		case resp.ID < req.ID:
			continue // stale response from an earlier request; skip
		default:
			return nil, fmt.Errorf("p4runtime: response id %d for request %d", resp.ID, req.ID)
		}
	}
}

// Insert adds a table entry; a *RejectionError-shaped error means the
// shim refused it.
func (c *Client) Insert(table string, e *dataplane.Entry) error {
	resp, err := c.roundTrip(&Request{Type: "insert", Table: table, Entry: EncodeEntry(e)})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}

// Validate checks an entry without inserting it.
func (c *Client) Validate(table string, e *dataplane.Entry) error {
	resp, err := c.roundTrip(&Request{Type: "validate", Table: table, Entry: EncodeEntry(e)})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}

// SetDefault changes a table's default action.
func (c *Client) SetDefault(table, action string, params []*big.Int) error {
	e := &dataplane.Entry{Action: action, Params: params}
	resp, err := c.roundTrip(&Request{Type: "set_default", Table: table, Entry: EncodeEntry(e)})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}

// BatchOp is one element of a client-side batch: set Entry for an
// insert, Default for a default-action change.
type BatchOp struct {
	Table   string
	Entry   *dataplane.Entry
	Default *dataplane.DefaultAction
}

// BatchRejectedError reports a rejected (and fully rolled back) batch.
type BatchRejectedError struct {
	// Index is the offending update's position, or -1 if unknown.
	Index   int
	Message string
}

func (e *BatchRejectedError) Error() string { return e.Message }

// WriteBatch applies a rule bundle atomically: either every update is
// validated and applied, or none is and a *BatchRejectedError reports
// the first offender.
func (c *Client) WriteBatch(ops []BatchOp) error {
	msgs := make([]UpdateMsg, 0, len(ops))
	for _, op := range ops {
		um := UpdateMsg{Table: op.Table}
		switch {
		case op.Entry != nil:
			um.Op = "insert"
			um.Entry = EncodeEntry(op.Entry)
		case op.Default != nil:
			um.Op = "set_default"
			um.Entry = EncodeEntry(&dataplane.Entry{Action: op.Default.Action, Params: op.Default.Params})
		default:
			return fmt.Errorf("p4runtime: batch op for table %s has neither entry nor default", op.Table)
		}
		msgs = append(msgs, um)
	}
	resp, err := c.roundTrip(&Request{Type: "batch", Update: msgs})
	if err != nil {
		return err
	}
	if !resp.OK {
		idx := -1
		if resp.FailedIndex != nil {
			idx = *resp.FailedIndex
		}
		return &BatchRejectedError{Index: idx, Message: resp.Error}
	}
	return nil
}

// PacketResult reports the outcome of an injected packet.
type PacketResult struct {
	EgressSpec int64
	Bug        bool
	BugKind    string
}

// SendPacket injects a packet (field name → value) into the dataplane.
func (c *Client) SendPacket(fields map[string]int64) (*PacketResult, error) {
	msg := map[string]string{}
	for k, v := range fields {
		msg[k] = fmt.Sprintf("%d", v)
	}
	resp, err := c.roundTrip(&Request{Type: "packet", Packet: msg})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	out := &PacketResult{Bug: resp.Bug, BugKind: resp.BugKind}
	if resp.EgressSpec != nil {
		out.EgressSpec = *resp.EgressSpec
	}
	return out, nil
}

// Health fetches the server's per-shard lifecycle states (switch id →
// "healthy" | "restoring" | "down"). A single-shim server returns an
// empty map.
func (c *Client) Health() (map[string]string, error) {
	resp, err := c.roundTrip(&Request{Type: "health"})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	return resp.Shards, nil
}

// Stats fetches shim counters.
func (c *Client) Stats() (validated, rejected int, err error) {
	resp, err := c.roundTrip(&Request{Type: "stats"})
	if err != nil {
		return 0, 0, err
	}
	if !resp.OK {
		return 0, 0, fmt.Errorf("%s", resp.Error)
	}
	return resp.Validated, resp.Rejected, nil
}
