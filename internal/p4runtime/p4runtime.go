// Package p4runtime implements a minimal P4Runtime-flavoured control
// protocol over TCP with newline-delimited JSON framing. The server
// embeds bf4's sanitization shim (paper §4.4): every table write is
// validated against the inferred controller assertions before it reaches
// the (simulated) dataplane; rejected updates return an exception to the
// controller, exactly the failure mode the paper argues controllers
// already handle (duplicate-rule errors). The server can also inject test
// packets, executing them on the dataplane interpreter against the
// current shadow snapshot.
package p4runtime

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/big"
	"net"
	"sync"

	"bf4/internal/dataplane"
	"bf4/internal/ir"
	"bf4/internal/shim"
)

// KeyMatchMsg is the wire form of a key match. Values are decimal
// strings (bitvector widths exceed int64).
type KeyMatchMsg struct {
	Value     string `json:"value"`
	Mask      string `json:"mask,omitempty"`
	PrefixLen *int   `json:"prefix_len,omitempty"`
}

// EntryMsg is the wire form of a table entry.
type EntryMsg struct {
	Keys     []KeyMatchMsg `json:"keys"`
	Action   string        `json:"action"`
	Params   []string      `json:"params,omitempty"`
	Priority int           `json:"priority,omitempty"`
}

// Request is one controller→shim message.
type Request struct {
	ID     int64             `json:"id"`
	Type   string            `json:"type"` // insert | set_default | validate | packet | stats
	Table  string            `json:"table,omitempty"`
	Entry  *EntryMsg         `json:"entry,omitempty"`
	Packet map[string]string `json:"packet,omitempty"`
}

// Response is one shim→controller message.
type Response struct {
	ID    int64  `json:"id"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// Packet-injection results.
	EgressSpec *int64 `json:"egress_spec,omitempty"`
	Bug        bool   `json:"bug,omitempty"`
	BugKind    string `json:"bug_kind,omitempty"`

	// Stats results.
	Validated int `json:"validated,omitempty"`
	Rejected  int `json:"rejected,omitempty"`
}

func parseBig(s string) (*big.Int, error) {
	if s == "" {
		return big.NewInt(0), nil
	}
	v, ok := new(big.Int).SetString(s, 0)
	if !ok {
		return nil, fmt.Errorf("p4runtime: bad integer %q", s)
	}
	return v, nil
}

// DecodeEntry converts a wire entry to a dataplane entry.
func DecodeEntry(m *EntryMsg) (*dataplane.Entry, error) {
	e := &dataplane.Entry{Action: m.Action, Priority: m.Priority}
	for _, km := range m.Keys {
		v, err := parseBig(km.Value)
		if err != nil {
			return nil, err
		}
		dk := dataplane.KeyMatch{Value: v, PrefixLen: -1}
		if km.Mask != "" {
			mv, err := parseBig(km.Mask)
			if err != nil {
				return nil, err
			}
			dk.Mask = mv
		}
		if km.PrefixLen != nil {
			dk.PrefixLen = *km.PrefixLen
		}
		e.Keys = append(e.Keys, dk)
	}
	for _, p := range m.Params {
		v, err := parseBig(p)
		if err != nil {
			return nil, err
		}
		e.Params = append(e.Params, v)
	}
	return e, nil
}

// EncodeEntry converts a dataplane entry to wire form.
func EncodeEntry(e *dataplane.Entry) *EntryMsg {
	m := &EntryMsg{Action: e.Action, Priority: e.Priority}
	for _, k := range e.Keys {
		km := KeyMatchMsg{Value: k.Value.String()}
		if k.Mask != nil {
			km.Mask = k.Mask.String()
		}
		if k.PrefixLen >= 0 {
			pl := k.PrefixLen
			km.PrefixLen = &pl
		}
		m.Keys = append(m.Keys, km)
	}
	for _, p := range e.Params {
		m.Params = append(m.Params, p.String())
	}
	return m
}

// Server runs the shim behind the wire protocol.
type Server struct {
	Shim *shim.Shim
	// Prog, when set, enables packet injection against the shadow
	// snapshot.
	Prog *ir.Program

	mu sync.Mutex
	ln net.Listener
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *Request) *Response {
	resp := &Response{ID: req.ID}
	fail := func(err error) *Response {
		resp.OK = false
		resp.Error = err.Error()
		return resp
	}
	switch req.Type {
	case "insert", "validate":
		if req.Entry == nil {
			return fail(fmt.Errorf("p4runtime: missing entry"))
		}
		e, err := DecodeEntry(req.Entry)
		if err != nil {
			return fail(err)
		}
		u := &shim.Update{Table: req.Table, Entry: e}
		if req.Type == "insert" {
			err = s.Shim.Apply(u)
		} else {
			err = s.Shim.Validate(u)
		}
		if err != nil {
			return fail(err)
		}
		resp.OK = true
	case "set_default":
		if req.Entry == nil {
			return fail(fmt.Errorf("p4runtime: missing entry"))
		}
		e, err := DecodeEntry(req.Entry)
		if err != nil {
			return fail(err)
		}
		err = s.Shim.Apply(&shim.Update{
			Table:      req.Table,
			SetDefault: &dataplane.DefaultAction{Action: e.Action, Params: e.Params},
		})
		if err != nil {
			return fail(err)
		}
		resp.OK = true
	case "packet":
		if s.Prog == nil {
			return fail(fmt.Errorf("p4runtime: packet injection not enabled"))
		}
		pkt := dataplane.Packet{}
		for name, val := range req.Packet {
			v, err := parseBig(val)
			if err != nil {
				return fail(err)
			}
			pkt[name] = v
		}
		interp := &dataplane.Interp{P: s.Prog, Snapshot: s.Shim.Snapshot(), Inputs: pkt}
		tr, err := interp.Run()
		if err != nil {
			return fail(err)
		}
		resp.OK = true
		spec := tr.EgressSpec()
		resp.EgressSpec = &spec
		if tr.Bug() {
			resp.Bug = true
			resp.BugKind = tr.Terminal.Bug.String()
		}
	case "stats":
		st := s.Shim.Stats()
		resp.OK = true
		resp.Validated = st.Validated
		resp.Rejected = st.Rejected
	default:
		return fail(fmt.Errorf("p4runtime: unknown request type %q", req.Type))
	}
	return resp
}

// Client is the controller side of the protocol.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	mu   sync.Mutex
	next int64
}

// Dial connects to a shim server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req.ID = c.next
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("p4runtime: response id %d for request %d", resp.ID, req.ID)
	}
	return &resp, nil
}

// Insert adds a table entry; a *RejectionError-shaped error means the
// shim refused it.
func (c *Client) Insert(table string, e *dataplane.Entry) error {
	resp, err := c.roundTrip(&Request{Type: "insert", Table: table, Entry: EncodeEntry(e)})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}

// Validate checks an entry without inserting it.
func (c *Client) Validate(table string, e *dataplane.Entry) error {
	resp, err := c.roundTrip(&Request{Type: "validate", Table: table, Entry: EncodeEntry(e)})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}

// SetDefault changes a table's default action.
func (c *Client) SetDefault(table, action string, params []*big.Int) error {
	e := &dataplane.Entry{Action: action, Params: params}
	resp, err := c.roundTrip(&Request{Type: "set_default", Table: table, Entry: EncodeEntry(e)})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("%s", resp.Error)
	}
	return nil
}

// PacketResult reports the outcome of an injected packet.
type PacketResult struct {
	EgressSpec int64
	Bug        bool
	BugKind    string
}

// SendPacket injects a packet (field name → value) into the dataplane.
func (c *Client) SendPacket(fields map[string]int64) (*PacketResult, error) {
	msg := map[string]string{}
	for k, v := range fields {
		msg[k] = fmt.Sprintf("%d", v)
	}
	resp, err := c.roundTrip(&Request{Type: "packet", Packet: msg})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Error)
	}
	out := &PacketResult{Bug: resp.Bug, BugKind: resp.BugKind}
	if resp.EgressSpec != nil {
		out.EgressSpec = *resp.EgressSpec
	}
	return out, nil
}

// Stats fetches shim counters.
func (c *Client) Stats() (validated, rejected int, err error) {
	resp, err := c.roundTrip(&Request{Type: "stats"})
	if err != nil {
		return 0, 0, err
	}
	if !resp.OK {
		return 0, 0, fmt.Errorf("%s", resp.Error)
	}
	return resp.Validated, resp.Rejected, nil
}
