package p4runtime

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"bf4/internal/dataplane"
	"bf4/internal/faultnet"
	"bf4/internal/shim"
)

// chaosSeed returns the fault-schedule seed: BF4_CHAOS_SEED if set
// (CI pins it for reproducible chaos runs), else a fixed default.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("BF4_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad BF4_CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return 1337
}

// saveChaosArtifacts copies the shim's state dir to
// BF4_CHAOS_ARTIFACT_DIR when the test fails, so CI can upload the
// journal for postmortem.
func saveChaosArtifacts(t *testing.T, stateDir string) {
	t.Cleanup(func() {
		out := os.Getenv("BF4_CHAOS_ARTIFACT_DIR")
		if out == "" || !t.Failed() {
			return
		}
		dst := filepath.Join(out, t.Name())
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		ents, _ := os.ReadDir(stateDir)
		for _, e := range ents {
			data, err := os.ReadFile(filepath.Join(stateDir, e.Name()))
			if err == nil {
				os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644)
			}
		}
		t.Logf("chaos artifacts saved to %s", dst)
	})
}

func chaosFaults(seed int64) faultnet.Schedule {
	return faultnet.NewRandom(seed, faultnet.RandomOpts{
		DropProb:     0.04,
		TruncateProb: 0.04,
		DelayProb:    0.10,
		PartialProb:  0.15,
		MaxDelay:     time.Millisecond,
	})
}

func chaosClientOpts(seed int64, sched faultnet.Schedule, addr string) Options {
	d := &faultnet.Dialer{Schedule: sched, Timeout: 2 * time.Second}
	return Options{
		CallTimeout: 2 * time.Second,
		MaxAttempts: 60,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Seed:        seed,
		Dialer:      func() (net.Conn, error) { return d.Dial(addr) },
	}
}

// chaosOp is one step of the deterministic convergence workload.
// reject marks ops the shim must refuse in both runs.
type chaosOp struct {
	do     func(apply func(*shim.Update) error, batch func([]*shim.Update) error) error
	reject bool
}

func insertOp(table string, key int64) *shim.Update {
	return &shim.Update{Table: table, Entry: &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(key)},
		Action: "NoAction",
	}}
}

func chaosWorkload() []chaosOp {
	var ops []chaosOp
	single := func(u *shim.Update, reject bool) {
		ops = append(ops, chaosOp{
			do:     func(apply func(*shim.Update) error, _ func([]*shim.Update) error) error { return apply(u) },
			reject: reject,
		})
	}
	batchOp := func(us []*shim.Update, reject bool) {
		ops = append(ops, chaosOp{
			do:     func(_ func(*shim.Update) error, batch func([]*shim.Update) error) error { return batch(us) },
			reject: reject,
		})
	}
	for i := int64(0); i < 30; i++ {
		switch {
		case i%9 == 7:
			// Unknown table: deterministic rejection.
			single(insertOp("ghost", i), true)
		case i%9 == 4:
			batchOp([]*shim.Update{insertOp("t", 100+i), insertOp("t", 130+i)}, false)
		case i%9 == 8:
			// Second element fails: whole batch must roll back.
			batchOp([]*shim.Update{insertOp("t", 160+i), insertOp("ghost", i)}, true)
		default:
			single(insertOp("t", i), false)
		}
	}
	single(&shim.Update{Table: "t", SetDefault: &dataplane.DefaultAction{Action: "bad"}}, true)
	single(&shim.Update{Table: "t", SetDefault: &dataplane.DefaultAction{Action: "NoAction"}}, false)
	return ops
}

// TestChaosConvergence drives the same workload through a fault-free
// in-process shim and through the full wire stack under injected
// drops/truncations/delays/partial writes. The client must retry every
// transport failure to success without double-applying anything: the
// final shadow state is byte-identical, including after a simulated
// kill -9 and restart from the state dir.
func TestChaosConvergence(t *testing.T) {
	seed := chaosSeed(t)
	ops := chaosWorkload()

	// Reference: fault-free, in-process.
	ref, err := shim.New(rawSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		err := op.do(ref.Apply, ref.ApplyBatch)
		if op.reject != (err != nil) {
			t.Fatalf("reference op %d: reject=%v err=%v", i, op.reject, err)
		}
	}
	want, err := ref.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Chaos run: same workload over the wire through faultnet, with the
	// shim journaling to a state dir.
	stateDir := t.TempDir()
	saveChaosArtifacts(t, stateDir)
	sh, err := shim.New(rawSpec())
	if err != nil {
		t.Fatal(err)
	}
	st, err := shim.OpenStore(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	srv := &Server{Shim: sh, ReadTimeout: 10 * time.Second, WriteTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	client, err := DialOptions(ln.Addr().String(), chaosClientOpts(seed, chaosFaults(seed), ln.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	apply := func(u *shim.Update) error {
		if u.SetDefault != nil {
			return client.SetDefault(u.Table, u.SetDefault.Action, u.SetDefault.Params)
		}
		return client.Insert(u.Table, u.Entry)
	}
	batch := func(us []*shim.Update) error {
		ops := make([]BatchOp, len(us))
		for i, u := range us {
			ops[i] = BatchOp{Table: u.Table, Entry: u.Entry, Default: u.SetDefault}
		}
		return client.WriteBatch(ops)
	}
	for i, op := range ops {
		err := op.do(apply, batch)
		if op.reject && err == nil {
			t.Fatalf("chaos op %d: rejection lost in transit", i)
		}
		if !op.reject && err != nil {
			t.Fatalf("chaos op %d: transport fault surfaced despite retries: %v", i, err)
		}
	}

	got, err := sh.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("chaos run diverged from fault-free run:\nwant %s\ngot  %s", want, got)
	}

	// Simulated kill -9: no Close, no Checkpoint. A fresh shim restored
	// from the state dir matches without any controller replay.
	sh2, err := shim.New(rawSpec())
	if err != nil {
		t.Fatal(err)
	}
	st2, err := shim.OpenStore(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh2.AttachStore(st2); err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	restored, err := sh2.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, restored) {
		t.Fatalf("restart diverged:\nwant %s\ngot  %s", want, restored)
	}
}

// canonicalEntries renders a snapshot order-independently: concurrent
// clients interleave arbitrarily, so entries are compared as sorted
// multisets per table.
func canonicalEntries(snap *dataplane.Snapshot) map[string][]string {
	out := map[string][]string{}
	for tbl, entries := range snap.Entries {
		for _, e := range entries {
			b, _ := json.Marshal(EncodeEntry(e))
			out[tbl] = append(out[tbl], string(b))
		}
		sort.Strings(out[tbl])
	}
	return out
}

// TestChaosRaceSoak exercises the full stack under -race: concurrent
// clients hammer one server with inserts, validates, packets and stats
// through independent fault schedules; the surviving shadow state must
// equal a sequential fault-free reference.
func TestChaosRaceSoak(t *testing.T) {
	seed := chaosSeed(t)
	prog, file := natProgram(t)
	sh, err := shim.New(file)
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Shim: sh, Prog: prog, ReadTimeout: 10 * time.Second, WriteTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	const clients = 6
	const perClient = 8
	entryFor := func(c, j int) *dataplane.Entry {
		return &dataplane.Entry{
			Keys:   []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(int64(c*100+j), -1)},
			Action: "drop_",
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cseed := seed + int64(c)*7919
			cl, err := DialOptions(addr, chaosClientOpts(cseed, chaosFaults(cseed), addr))
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < perClient; j++ {
				if err := cl.Insert("nat", entryFor(c, j)); err != nil {
					errs <- fmt.Errorf("client %d insert %d: %w", c, j, err)
					return
				}
				if err := cl.Validate("nat", entryFor(c, j)); err != nil {
					errs <- fmt.Errorf("client %d validate %d: %w", c, j, err)
					return
				}
				if _, err := cl.SendPacket(map[string]int64{
					"hdr.ethernet.etherType": 0x800,
					"hdr.ipv4.srcAddr":       int64(c*100 + j),
					"hdr.ipv4.ttl":           64,
				}); err != nil {
					errs <- fmt.Errorf("client %d packet %d: %w", c, j, err)
					return
				}
				if _, _, err := cl.Stats(); err != nil {
					errs <- fmt.Errorf("client %d stats %d: %w", c, j, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Sequential fault-free reference.
	ref, err := shim.New(file)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < clients; c++ {
		for j := 0; j < perClient; j++ {
			if err := ref.Apply(&shim.Update{Table: "nat", Entry: entryFor(c, j)}); err != nil {
				t.Fatalf("reference insert: %v", err)
			}
		}
	}
	got := canonicalEntries(sh.Snapshot())
	want := canonicalEntries(ref.Snapshot())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("soak shadow state diverged:\ngot  %v\nwant %v", got, want)
	}
}
