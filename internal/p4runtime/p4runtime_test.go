package p4runtime

import (
	"math/big"
	"net"
	"sync"
	"testing"

	"bf4/internal/dataplane"
	"bf4/internal/driver"
	"bf4/internal/ir"
	"bf4/internal/shim"
	"bf4/internal/spec"
)

const natSrc = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<32> srcAddr; bit<32> dstAddr; }
struct meta_t { bit<1> do_forward; bit<32> nhop; }
struct metadata { meta_t meta; }
struct headers { ethernet_t ethernet; ipv4_t ipv4; }

parser P(packet_in pkt, out headers hdr, inout metadata meta,
         inout standard_metadata_t smeta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            16w0x800: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control Ing(inout headers hdr, inout metadata meta,
            inout standard_metadata_t smeta) {
    action drop_() { mark_to_drop(smeta); }
    action nat_hit(bit<32> a) {
        meta.meta.do_forward = 1w1;
        meta.meta.nhop = a;
    }
    table nat {
        key = { hdr.ipv4.isValid(): exact; hdr.ipv4.srcAddr: ternary; }
        actions = { drop_; nat_hit; }
        default_action = drop_();
    }
    action set_nhop(bit<32> nhop, bit<9> port) {
        meta.meta.nhop = nhop;
        smeta.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = { meta.meta.nhop: lpm; }
        actions = { set_nhop; drop_; }
    }
    apply {
        nat.apply();
        if (meta.meta.do_forward == 1w1) {
            ipv4_lpm.apply();
        }
    }
}

control Eg(inout headers hdr, inout metadata meta,
           inout standard_metadata_t smeta) { apply { } }
control Dep(packet_out pkt, in headers hdr) { apply { pkt.emit(hdr.ipv4); } }

V1Switch(P(), Ing(), Eg(), Dep()) main;
`

// natProgram compiles the NAT example and returns its IR plus the
// inferred spec, shared by the protocol and chaos tests.
func natProgram(t *testing.T) (*ir.Program, *spec.File) {
	t.Helper()
	res, err := driver.Run("simple_nat", natSrc, driver.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := res.Fixed
	if pl == nil {
		pl = res.Initial
	}
	return pl.IR, spec.Build("simple_nat", pl.IR, res.InitialRep, res.FinalInfer, nil)
}

func startServer(t *testing.T) (*Client, func()) {
	t.Helper()
	prog, file := natProgram(t)
	sh, err := shim.New(file)
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Shim: sh, Prog: prog}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(ln)
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return client, func() {
		client.Close()
		srv.Close()
		wg.Wait()
	}
}

func TestInsertAndPacket(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	// Sane nat entry for 10.0.0.1.
	err := client.Insert("nat", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(0x0A000001, -1)},
		Action: "nat_hit",
		Params: []*big.Int{big.NewInt(0x0A000099)},
	})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	// Route in lpm (fixed table has validity key appended).
	err = client.Insert("ipv4_lpm", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewLpm(0, 0), dataplane.NewExact(1)},
		Action: "set_nhop",
		Params: []*big.Int{big.NewInt(1), big.NewInt(7)},
	})
	if err != nil {
		t.Fatalf("insert lpm: %v", err)
	}

	pr, err := client.SendPacket(map[string]int64{
		"hdr.ethernet.etherType": 0x800,
		"hdr.ipv4.srcAddr":       0x0A000001,
		"hdr.ipv4.ttl":           64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Bug {
		t.Fatalf("packet triggered bug %s", pr.BugKind)
	}
	if pr.EgressSpec != 7 {
		t.Fatalf("egress_spec = %d, want 7", pr.EgressSpec)
	}
}

func TestRejectionOverTheWire(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	err := client.Insert("nat", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(0), dataplane.NewTernary(0, 0xFF000000)},
		Action: "nat_hit",
		Params: []*big.Int{big.NewInt(1)},
	})
	if err == nil {
		t.Fatal("faulty rule accepted over the wire")
	}
	validated, rejected, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if validated != 1 || rejected != 1 {
		t.Fatalf("stats: validated=%d rejected=%d", validated, rejected)
	}
}

func TestValidateDoesNotInsert(t *testing.T) {
	client, stop := startServer(t)
	defer stop()

	e := &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(5, -1)},
		Action: "drop_",
	}
	if err := client.Validate("nat", e); err != nil {
		t.Fatal(err)
	}
	// The validated-but-not-inserted rule must not affect packets: an
	// IPv4 packet from 5 misses and runs the drop_ default.
	pr, err := client.SendPacket(map[string]int64{
		"hdr.ethernet.etherType": 0x800,
		"hdr.ipv4.srcAddr":       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr.EgressSpec != 511 {
		t.Fatalf("egress_spec = %d, want drop", pr.EgressSpec)
	}
}

func TestConcurrentClients(t *testing.T) {
	client, stop := startServer(t)
	defer stop()
	_ = client

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				e := &dataplane.Entry{
					Keys:   []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(int64(g*100+i), -1)},
					Action: "drop_",
				}
				if err := client.Insert("nat", e); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestEntryCodecRoundTrip(t *testing.T) {
	e := &dataplane.Entry{
		Keys: []dataplane.KeyMatch{
			dataplane.NewExact(1),
			dataplane.NewTernary(0xAA, 0xFF),
			dataplane.NewLpm(0x0A000000, 8),
		},
		Action:   "act",
		Params:   []*big.Int{big.NewInt(7), big.NewInt(9)},
		Priority: 3,
	}
	m := EncodeEntry(e)
	e2, err := DecodeEntry(m)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Action != "act" || e2.Priority != 3 || len(e2.Keys) != 3 || len(e2.Params) != 2 {
		t.Fatalf("round trip lost data: %+v", e2)
	}
	if e2.Keys[2].PrefixLen != 8 || e2.Keys[1].Mask.Int64() != 0xFF {
		t.Fatalf("key details lost: %+v", e2.Keys)
	}
}
