package p4runtime

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	mrand "math/rand"
	"net"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"bf4/internal/faultnet"
	"bf4/internal/obs"
	"bf4/internal/shim"
)

// fleetChaosConfig is the shared fleet tuning for chaos tests: fast
// supervisor ticks so restores complete inside client backoff windows.
func fleetChaosConfig(root string, reg *obs.Registry) shim.FleetConfig {
	return shim.FleetConfig{
		StateRoot:      root,
		HealthInterval: 10 * time.Millisecond,
		HealthDeadline: 2 * time.Second,
		OpWait:         time.Second,
		CompactEvery:   5,
		Obs:            reg,
	}
}

// TestFleetChaosFailover is the fleet-scale chaos proof: dozens of
// concurrent controllers drive a multi-shard server while a killer
// goroutine repeatedly fences random shards (the supervisor restores
// them from snapshot+journal). Every controller op must eventually ack;
// afterwards each shard's shadow state must equal a fault-free oracle
// fed exactly the acked updates — nothing acked lost, nothing
// double-applied — and a final kill+restore must reproduce the state
// byte-identically from disk.
func TestFleetChaosFailover(t *testing.T) {
	seed := chaosSeed(t)
	root := t.TempDir()
	saveChaosArtifacts(t, root)
	reg := obs.NewRegistry()

	fleet := shim.NewFleet(fleetChaosConfig(root, reg))
	defer fleet.Close()
	shardIDs := []string{"sw0", "sw1", "sw2"}
	file := rawSpec()
	for _, id := range shardIDs {
		if _, err := fleet.AddShard(id, file); err != nil {
			t.Fatal(err)
		}
	}
	// Verify-once over the wire stack: three switches, one program, one
	// compile.
	if got := reg.CounterValue("bf4_fleet_annotation_compiles_total"); got != 1 {
		t.Fatalf("annotation compiles = %d, want 1 (verify once, guard all shards)", got)
	}
	fleet.StartSupervisor()

	srv := &Server{Fleet: fleet, DefaultSwitch: "sw0",
		ReadTimeout: 10 * time.Second, WriteTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// Killer: fence a random shard every few milliseconds until the
	// workload drains. The supervisor races it with restores.
	done := make(chan struct{})
	var killerWG sync.WaitGroup
	killerWG.Add(1)
	go func() {
		defer killerWG.Done()
		rng := mrand.New(mrand.NewSource(seed * 31))
		for {
			select {
			case <-done:
				return
			default:
			}
			time.Sleep(time.Duration(5+rng.Intn(10)) * time.Millisecond)
			fleet.Kill(shardIDs[rng.Intn(len(shardIDs))])
		}
	}()

	// Workload: clientsPerShard controllers per switch, each inserting
	// perClient distinct keys (8-bit key space: local client index × 16
	// + op index stays unique per shard).
	const clientsPerShard = 8
	const perClient = 10
	var wg sync.WaitGroup
	errs := make(chan error, clientsPerShard*len(shardIDs))
	for si, id := range shardIDs {
		for c := 0; c < clientsPerShard; c++ {
			wg.Add(1)
			go func(si, c int, id string) {
				defer wg.Done()
				cl, err := DialOptions(addr, Options{
					CallTimeout: 2 * time.Second,
					MaxAttempts: 100,
					BackoffBase: time.Millisecond,
					BackoffMax:  20 * time.Millisecond,
					Seed:        seed + int64(si*100+c)*7919,
					Switch:      id,
				})
				if err != nil {
					errs <- err
					return
				}
				defer cl.Close()
				for j := 0; j < perClient; j++ {
					u := insertOp("t", int64(c*16+j))
					if err := cl.Insert(u.Table, u.Entry); err != nil {
						errs <- fmt.Errorf("shard %s client %d insert %d: %w", id, c, j, err)
						return
					}
				}
				if _, err := cl.Health(); err != nil {
					errs <- fmt.Errorf("shard %s client %d health: %w", id, c, err)
				}
			}(si, c, id)
		}
	}
	wg.Wait()
	close(done)
	killerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesce: restore everything the killer left down.
	waitAllHealthy(t, fleet, shardIDs)
	if got := reg.CounterValue("bf4_fleet_restores_total"); got == 0 {
		t.Fatal("chaos run finished with zero restores — the killer never landed")
	}

	// Oracle: a fault-free shim fed exactly the acked updates (all of
	// them: every client op above was required to succeed).
	for _, id := range shardIDs {
		ref, err := shim.New(rawSpec())
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < clientsPerShard; c++ {
			for j := 0; j < perClient; j++ {
				if err := ref.Apply(insertOp("t", int64(c*16+j))); err != nil {
					t.Fatalf("oracle apply: %v", err)
				}
			}
		}
		sd := fleet.Shard(id)
		got := canonicalEntries(sd.Snapshot())
		want := canonicalEntries(ref.Snapshot())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %s diverged from fault-free oracle:\ngot  %v\nwant %v", id, got, want)
		}

		// Byte-identical restore: fence the live incarnation and rebuild
		// purely from snapshot+journal.
		before, err := sd.MarshalSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		fleet.Kill(id)
		if err := fleet.RestoreNow(id); err != nil {
			t.Fatalf("shard %s restore: %v", id, err)
		}
		after, err := sd.MarshalSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("shard %s restore not byte-identical:\nbefore %s\nafter  %s", id, before, after)
		}
	}
}

func waitAllHealthy(t *testing.T, fleet *shim.Fleet, ids []string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := true
		for _, st := range fleet.Health() {
			if st != "healthy" {
				healthy = false
			}
		}
		if healthy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards never became healthy: %v", fleet.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// cutOnBatchConn partitions its gate immediately after forwarding the
// first batch request frame: the server receives (and processes) the
// batch, but the response never reaches the client — the sharpest
// version of an ambiguous outcome.
type cutOnBatchConn struct {
	net.Conn
	gate *faultnet.Gate
	once *sync.Once
}

func (c *cutOnBatchConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if err == nil && bytes.Contains(p, []byte(`"type":"batch"`)) {
		c.once.Do(c.gate.Cut)
	}
	return n, err
}

// TestFleetPartitionHealDuringCheckpoint partitions the controller off
// the moment its WriteBatch frame is delivered, while the shard's
// CompactEvery=1 store checkpoints on that very record. The client
// retries across the healed partition with the same request ID; the
// persisted dedup window must short-circuit the retry (no duplicate
// applies), and must keep doing so after a full kill+restore — the
// window survives both the checkpoint that folded the journal record
// away and the restore from that checkpoint.
func TestFleetPartitionHealDuringCheckpoint(t *testing.T) {
	root := t.TempDir()
	saveChaosArtifacts(t, root)
	reg := obs.NewRegistry()

	cfg := fleetChaosConfig(root, reg)
	cfg.CompactEvery = 1 // every record triggers a checkpoint
	fleet := shim.NewFleet(cfg)
	defer fleet.Close()
	if _, err := fleet.AddShard("sw0", rawSpec()); err != nil {
		t.Fatal(err)
	}

	srv := &Server{Fleet: fleet, DefaultSwitch: "sw0",
		ReadTimeout: 10 * time.Second, WriteTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	gate := faultnet.NewGate()
	var once sync.Once
	cl, err := DialOptions(addr, Options{
		CallTimeout: 2 * time.Second,
		MaxAttempts: 100,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Seed:        20260808,
		Dialer: func() (net.Conn, error) {
			c, err := gate.Dial(func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 2*time.Second)
			})
			if err != nil {
				return nil, err
			}
			return &cutOnBatchConn{Conn: c, gate: gate, once: &once}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sd := fleet.Shard("sw0")
	ops := []BatchOp{
		{Table: "t", Entry: insertOp("t", 1).Entry},
		{Table: "t", Entry: insertOp("t", 2).Entry},
		{Table: "t", Entry: insertOp("t", 3).Entry},
	}

	// Healer: once the server has applied the batch (shadow grew) and the
	// partition has struck, lift it so the client's retry can land.
	healed := make(chan struct{})
	go func() {
		defer close(healed)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if gate.IsCut() && sd.ShadowSize("t") == len(ops) {
				gate.Heal()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	if err := cl.WriteBatch(ops); err != nil {
		t.Fatalf("batch never converged across the partition: %v", err)
	}
	<-healed

	if got := sd.ShadowSize("t"); got != len(ops) {
		t.Fatalf("shadow has %d entries, want %d (retry double-applied or batch lost)", got, len(ops))
	}
	if hits := reg.CounterValue("bf4_shim_dedup_hits_total"); hits == 0 {
		t.Fatal("retry was not short-circuited by the dedup window")
	}

	// The dedup window must survive a restore from the checkpoint that
	// folded the batch's journal record away. The batch was this client's
	// first request, so its idempotency key is "<client id>:1".
	fleet.Kill("sw0")
	if err := fleet.RestoreNow("sw0"); err != nil {
		t.Fatal(err)
	}
	key := cl.ID() + ":1"
	updates := make([]*shim.Update, len(ops))
	for i, op := range ops {
		updates[i] = &shim.Update{Table: op.Table, Entry: op.Entry}
	}
	if err := sd.ApplyBatchWithKey(key, updates); err != nil {
		t.Fatalf("replayed key after restore: %v", err)
	}
	if got := sd.ShadowSize("t"); got != len(ops) {
		t.Fatalf("post-restore retry double-applied: %d entries, want %d", got, len(ops))
	}
}

// ackWatcher parses "acked N" lines from the child shard's stdout and
// signals once a target batch count has been durably acknowledged.
type ackWatcher struct {
	mu      sync.Mutex
	partial []byte
	max     int // highest acked batch index (-1 = none)
	target  int
	reached chan struct{}
	fired   bool
}

func newAckWatcher(target int) *ackWatcher {
	return &ackWatcher{max: -1, target: target, reached: make(chan struct{})}
}

func (w *ackWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.partial = append(w.partial, p...)
	for {
		i := bytes.IndexByte(w.partial, '\n')
		if i < 0 {
			break
		}
		line := strings.TrimSpace(string(w.partial[:i]))
		w.partial = w.partial[i+1:]
		var n int
		if _, err := fmt.Sscanf(line, "acked %d", &n); err == nil && n > w.max {
			w.max = n
		}
	}
	if !w.fired && w.max+1 >= w.target {
		w.fired = true
		close(w.reached)
	}
	return len(p), nil
}

func (w *ackWatcher) acked() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.max
}

// TestShimShardChildProcess is the re-exec helper for the SIGKILL test:
// run as a child process, it opens a persisted shim and applies batches
// until killed, printing "acked N" after each durable acknowledgement
// (the journal fsync has returned before the line is written).
func TestShimShardChildProcess(t *testing.T) {
	if os.Getenv("BF4_SHARD_CHILD") != "1" {
		t.Skip("child-process helper; driven by TestFleetSIGKILLShardMidBatch")
	}
	dir := os.Getenv("BF4_SHARD_CHILD_DIR")
	sh, err := shim.New(rawSpec())
	if err != nil {
		t.Fatal(err)
	}
	st, err := shim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	out := bufio.NewWriter(os.Stdout)
	for i := 0; i < 100; i++ {
		batch := []*shim.Update{
			insertOp("t", int64(2*i)),
			insertOp("t", int64(2*i+1)),
		}
		if err := sh.ApplyBatchWithKey(fmt.Sprintf("child:%d", i), batch); err != nil {
			t.Fatalf("child batch %d: %v", i, err)
		}
		fmt.Fprintf(out, "acked %d\n", i)
		out.Flush()
		time.Sleep(time.Millisecond)
	}
	// Deliberately no Close/Checkpoint: if the parent never kills us, the
	// exit still looks like a crash to the recovery path.
}

// TestFleetSIGKILLShardMidBatch runs a shard as a real child process
// and delivers SIGKILL while it is mid-batch — no deferred cleanup, no
// flushed buffers. Recovery from the state dir must retain every acked
// batch exactly once; at most one journaled-but-unacked batch beyond
// that is permitted (durable but killed before the ack line).
func TestFleetSIGKILLShardMidBatch(t *testing.T) {
	dir := t.TempDir()
	saveChaosArtifacts(t, dir)

	w := newAckWatcher(8)
	proc, err := faultnet.StartProc(os.Args[0],
		[]string{"-test.run=TestShimShardChildProcess$", "-test.count=1"},
		[]string{"BF4_SHARD_CHILD=1", "BF4_SHARD_CHILD_DIR=" + dir},
		w, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-w.reached:
	case <-time.After(30 * time.Second):
		proc.Kill()
		t.Fatalf("child never acked %d batches (last acked %d)", w.target, w.acked())
	}
	if err := proc.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	acked := w.acked()
	if acked < 0 {
		t.Fatal("no acked batches before kill")
	}

	// Recover in-process from exactly what the dead child left on disk.
	sh, err := shim.New(rawSpec())
	if err != nil {
		t.Fatal(err)
	}
	st, err := shim.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.AttachStore(st); err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer st.Close()

	entries := canonicalEntries(sh.Snapshot())["t"]
	n := len(entries)
	minEntries := 2 * (acked + 1) // every acked batch, atomically
	maxEntries := minEntries + 2  // plus at most one durable-but-unacked batch
	if n < minEntries {
		t.Fatalf("acked update lost: %d entries restored, child acked %d batches (want ≥ %d)",
			n, acked+1, minEntries)
	}
	if n > maxEntries {
		t.Fatalf("%d entries restored for %d acked batches — more than one unacked batch leaked (max %d)",
			n, acked+1, maxEntries)
	}
	if n%2 != 0 {
		t.Fatalf("%d entries restored — a batch was applied non-atomically", n)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e] {
			t.Fatalf("duplicate entry after recovery: %s", e)
		}
		seen[e] = true
	}
}

// TestClientBackoffJitterSpread is the lockstep-storm audit: a fleet of
// controllers deployed from one config template shares a Seed, and a
// naive implementation would have them all reconnect on identical
// schedules after a shard restart. Every client must draw its backoff
// jitter from a private, uniquely-seeded stream.
func TestClientBackoffJitterSpread(t *testing.T) {
	const n = 16
	const attempts = 6
	opts := Options{Seed: 42, BackoffBase: time.Millisecond, BackoffMax: 256 * time.Millisecond}

	sigs := map[string]int{}
	firstDelays := map[time.Duration]int{}
	for i := 0; i < n; i++ {
		c := newClient(opts)
		var sig strings.Builder
		for a := 1; a <= attempts; a++ {
			d := c.backoffDelay(a)
			// Bounds: exponential cap with jitter over [cap/2, cap].
			exp := opts.BackoffBase << (a - 1)
			if exp > opts.BackoffMax {
				exp = opts.BackoffMax
			}
			if d < exp/2 || d > exp {
				t.Fatalf("client %d attempt %d: delay %v outside [%v, %v]", i, a, d, exp/2, exp)
			}
			if a == 1 {
				firstDelays[d]++
			}
			fmt.Fprintf(&sig, "%d,", d)
		}
		sigs[sig.String()]++
	}
	if len(sigs) != n {
		t.Fatalf("only %d distinct backoff schedules across %d clients sharing a Seed — reconnect herd", len(sigs), n)
	}
	for d, count := range firstDelays {
		if count > n/2 {
			t.Fatalf("%d of %d clients chose the same first delay %v — lockstep storm", count, n, d)
		}
	}
}
