package p4runtime

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bf4/internal/dataplane"
	"bf4/internal/obs"
	"bf4/internal/shim"
)

// TestChaosMetricsScrape runs the concurrent chaos workload with a
// metrics registry attached to both the shim and the server, while a
// scraper hits /metrics and /metrics.json mid-flight — the exact
// deployment shape of bf4-shim -obs-addr. Under -race this proves the
// exposition path (which snapshots histograms bucket by bucket) is safe
// against the validation hot path. At the end the exported counters must
// agree with the shim's own Stats().
func TestChaosMetricsScrape(t *testing.T) {
	seed := chaosSeed(t)
	prog, file := natProgram(t)
	sh, err := shim.New(file)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sh.SetObs(reg)
	srv := &Server{Shim: sh, Prog: prog, Obs: reg,
		ReadTimeout: 10 * time.Second, WriteTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	web := httptest.NewServer(obs.NewMux(reg))
	defer web.Close()

	scrape := func(path string) string {
		resp, err := http.Get(web.URL + path)
		if err != nil {
			t.Errorf("scrape %s: %v", path, err)
			return ""
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("scrape %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Errorf("scrape %s: read: %v", path, err)
		}
		return string(body)
	}

	const clients = 4
	const perClient = 6
	entryFor := func(c, j int) *dataplane.Entry {
		return &dataplane.Entry{
			Keys:   []dataplane.KeyMatch{dataplane.NewExact(1), dataplane.NewTernary(int64(c*100+j), -1)},
			Action: "drop_",
		}
	}

	stop := make(chan struct{})
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			scrape("/metrics")
			scrape("/metrics.json")
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cseed := seed + int64(c)*104729
			cl, err := DialOptions(addr, chaosClientOpts(cseed, chaosFaults(cseed), addr))
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < perClient; j++ {
				if err := cl.Insert("nat", entryFor(c, j)); err != nil {
					errs <- fmt.Errorf("client %d insert %d: %w", c, j, err)
					return
				}
				if _, _, err := cl.Stats(); err != nil {
					errs <- fmt.Errorf("client %d stats %d: %w", c, j, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	close(stop)
	scraperWG.Wait()

	// The exported counters must agree with the shim's own ledger.
	st := sh.Stats()
	if got := reg.CounterValue("bf4_shim_updates_validated_total"); got != int64(st.Validated) {
		t.Errorf("validated counter = %d, shim says %d", got, st.Validated)
	}
	if got := reg.CounterValue("bf4_shim_updates_rejected_total"); got != int64(st.Rejected) {
		t.Errorf("rejected counter = %d, shim says %d", got, st.Rejected)
	}
	if st.Validated < clients*perClient {
		t.Errorf("only %d updates validated, want >= %d", st.Validated, clients*perClient)
	}
	if reg.CounterValue("bf4_p4rt_requests_total") == 0 {
		t.Error("no p4runtime requests recorded")
	}

	// A final scrape must expose every metric family the run produced.
	final := scrape("/metrics")
	for _, want := range []string{
		"bf4_shim_updates_validated_total",
		"bf4_shim_update_ns_bucket",
		"bf4_shim_shadow_entries",
		"bf4_p4rt_requests_total",
		"bf4_p4rt_request_ns_bucket",
	} {
		if !strings.Contains(final, want) {
			t.Errorf("final exposition missing %s", want)
		}
	}
}
