// Quickstart: verify the paper's running example (simple_nat), inspect
// the bugs bf4 finds, the controller annotations it infers, and the key
// it adds to fix the TTL bug — the complete Figure 3 loop in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bf4/internal/driver"
	"bf4/internal/progs"
	"bf4/internal/spec"
)

func main() {
	prog := progs.Get("simple_nat")

	// Run the whole compile-time pipeline: find bugs assuming arbitrary
	// table entries, infer controller annotations, propose fixes, rebuild
	// and re-infer.
	res, err := driver.Run(prog.Name, prog.Source, driver.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== bf4 quickstart:", prog.Name, "==")
	fmt.Printf("reachable bugs assuming arbitrary entries: %d\n", res.Bugs)
	for _, b := range res.InitialRep.Bugs {
		if b.Reachable {
			fmt.Printf("  - %s\n", b.Description())
		}
	}

	fmt.Printf("\nafter inferring controller annotations: %d bugs remain\n", res.BugsAfterInfer)
	fmt.Printf("fixes proposed: %d key(s)\n", res.KeysAdded)
	fmt.Print(res.Fixes.Describe())
	fmt.Printf("after applying fixes and re-inferring: %d bugs remain\n\n", res.BugsAfterFixes)

	// The annotations the runtime shim will enforce, in the paper's
	// SQL-like rendering.
	pl := res.Fixed
	if pl == nil {
		pl = res.Initial
	}
	file := spec.Build(prog.Name, pl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)
	fmt.Println("== inferred controller assertions ==")
	fmt.Print(file.Render())
}
