// Properties: check user @assert/@assume predicates against a program
// two ways. First the lint-style run (driver.Props): every assert is
// discharged statically, confirmed with a packet witness, or dismissed
// as infeasible. Then the full verify→infer loop (driver.Run with the
// property instrumenter): violated asserts whose root cause is table
// content become "controlled" once bf4 infers the controller
// annotations that rule the bad entries out; genuine dataplane bugs
// stay violated.
//
//	go run ./examples/properties
package main

import (
	"fmt"
	"log"

	"bf4/internal/driver"
	"bf4/internal/ir"
	"bf4/internal/progs"
	"bf4/internal/prop"
)

func main() {
	// A deterministic program + .props spec pair built to exercise all
	// three verdicts (same generator as `bf4 lint -family props`).
	name := "propswitch.p4"
	src, specText := progs.GeneratePropSwitch(2, 1)
	props, err := prop.ParseSpecFile("propswitch.props", []byte(specText))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== properties, lint-style (bf4 lint -props) ==")
	rep, err := driver.Props(name, src, props, driver.DefaultPropConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.RenderText(name))

	// The same properties through the full pipeline: find violations
	// assuming arbitrary table entries, then infer the controller
	// annotations that control the controllable ones.
	fmt.Println("\n== properties through verify -> infer (bf4 -check=assert) ==")
	cfg := driver.DefaultConfig()
	cfg.IR.Instrument = prop.Instrumenter(props)
	res, err := driver.Run(name, src, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range res.InitialRep.Bugs {
		if b.Kind != ir.BugAssertFail || b.Node.Prop == nil {
			continue
		}
		info := b.Node.Prop
		switch {
		case !b.Reachable:
			fmt.Printf("assert %s (%s): holds\n", info.Text, info.Origin)
		case res.InferResult.Controlled[b.Node]:
			fmt.Printf("assert %s (%s): violated under arbitrary entries; controlled by inferred annotations\n", info.Text, info.Origin)
		default:
			fmt.Printf("assert %s (%s): VIOLATED (uncontrolled after inference)\n", info.Text, info.Origin)
		}
	}
}
