// Controller-shim: the paper's end-to-end runtime scenario over the wire.
// A shim server (controller ⇄ shim ⇄ dataplane) is started on loopback
// with the assertions inferred for simple_nat; an SDN-controller-shaped
// client then:
//
//  1. installs sane NAT and routing rules — accepted,
//
//  2. attempts the paper's faulty rule (ipv4.isValid()==0 with a nonzero
//     srcAddr mask) — rejected with an exception,
//
//  3. injects packets to show the accepted snapshot forwards correctly
//     and, because the faulty rule never reached the dataplane, no packet
//     can trigger the bug.
//
//     go run ./examples/controller-shim
package main

import (
	"fmt"
	"log"
	"math/big"
	"net"

	"bf4/internal/dataplane"
	"bf4/internal/driver"
	"bf4/internal/p4runtime"
	"bf4/internal/progs"
	"bf4/internal/shim"
	"bf4/internal/spec"
)

func main() {
	prog := progs.Get("simple_nat")
	res, err := driver.Run(prog.Name, prog.Source, driver.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	pl := res.Fixed // the fixed program (ipv4_lpm gained a validity key)
	file := spec.Build(prog.Name, pl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)

	sh, err := shim.New(file)
	if err != nil {
		log.Fatal(err)
	}
	srv := &p4runtime.Server{Shim: sh, Prog: pl.IR}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	client, err := p4runtime.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Println("controller connected to shim at", ln.Addr())

	// 1. Sane rules. The nat table keys (from the program):
	//    is_ext_if, ipv4.isValid(), tcp.isValid(), then four ternaries.
	must := func(table string, e *dataplane.Entry) {
		if err := client.Insert(table, e); err != nil {
			log.Fatalf("expected accept for %s: %v", table, err)
		}
		fmt.Printf("  accepted: %s <- action %s\n", table, e.Action)
	}
	must("if_info", &dataplane.Entry{
		Keys:   []dataplane.KeyMatch{dataplane.NewExact(1)},
		Action: "set_if_info",
		Params: []*big.Int{big.NewInt(0)}, // internal interface
	})
	must("nat", &dataplane.Entry{
		Keys: []dataplane.KeyMatch{
			dataplane.NewExact(0), // is_ext_if == 0
			dataplane.NewExact(1), // ipv4 valid
			dataplane.NewExact(1), // tcp valid
			dataplane.NewTernary(0x0A000001, -1),
			dataplane.NewTernary(0, 0),
			dataplane.NewTernary(0, 0),
			dataplane.NewTernary(0, 0),
		},
		Action: "nat_hit_int_to_ext",
		Params: []*big.Int{big.NewInt(0xC0A80001), big.NewInt(4000)},
	})
	must("ipv4_lpm", &dataplane.Entry{
		Keys: []dataplane.KeyMatch{
			dataplane.NewLpm(0, 0),
			dataplane.NewExact(1), // the key bf4 added: ipv4 must be valid
		},
		Action: "set_nhop",
		Params: []*big.Int{big.NewInt(0x0A0000FE), big.NewInt(7)},
	})

	// 2. The paper's faulty rule: expects an INVALID ipv4 header yet
	// matches on srcAddr with a nonzero mask.
	fmt.Println("\ncontroller now tries the faulty rule from the paper:")
	err = client.Insert("nat", &dataplane.Entry{
		Keys: []dataplane.KeyMatch{
			dataplane.NewExact(0),
			dataplane.NewExact(0), // ipv4 INVALID expected...
			dataplane.NewExact(0),
			dataplane.NewTernary(0, 0xFF000000), // ...but srcAddr mask != 0
			dataplane.NewTernary(0, 0),
			dataplane.NewTernary(0, 0),
			dataplane.NewTernary(0, 0),
		},
		Action: "nat_hit_int_to_ext",
		Params: []*big.Int{big.NewInt(1), big.NewInt(1)},
	})
	if err == nil {
		log.Fatal("the shim accepted a faulty rule!")
	}
	fmt.Printf("  rejected with exception:\n    %v\n", err)

	// 3. Packets through the accepted snapshot.
	fmt.Println("\ninjecting packets against the accepted snapshot:")
	pr, err := client.SendPacket(map[string]int64{
		"smeta.ingress_port":     1,
		"hdr.ethernet.etherType": 0x800,
		"hdr.ipv4.protocol":      6,
		"hdr.ipv4.srcAddr":       0x0A000001,
		"hdr.ipv4.ttl":           64,
		"hdr.tcp.srcPort":        1234,
		"meta.meta.ipv4_da":      0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  TCP flow from 10.0.0.1: egress_spec=%d bug=%v\n", pr.EgressSpec, pr.Bug)

	pr, err = client.SendPacket(map[string]int64{
		"smeta.ingress_port":     1,
		"hdr.ethernet.etherType": 0x806, // ARP: no ipv4 header
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ARP packet (no ipv4): egress_spec=%d bug=%v\n", pr.EgressSpec, pr.Bug)

	v, r, _ := client.Stats()
	fmt.Printf("\nshim stats: %d updates validated, %d rejected\n", v, r)
}
