// Fix-and-verify: bring your own (buggy) P4 program, watch bf4 repair it.
// This example analyzes an inline program with a validity-blind routing
// table, prints the counterexample model for the bug, applies the
// proposed key fix, re-verifies the fixed source end to end, and finally
// replays the bug's model through the dataplane interpreter to prove the
// counterexample is real on the original program.
//
//	go run ./examples/fix-and-verify
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"bf4/internal/dataplane"
	"bf4/internal/driver"
)

const buggyRouter = `
header ipv4_t {
    bit<8>  ttl;
    bit<8>  protocol;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct metadata {
    bit<16> next_hop;
}

struct headers {
    ipv4_t ipv4;
}

parser RParser(packet_in pkt, out headers hdr, inout metadata meta,
               inout standard_metadata_t smeta) {
    state start {
        transition select(smeta.ingress_port) {
            9w0: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition accept;
    }
}

control RIngress(inout headers hdr, inout metadata meta,
                 inout standard_metadata_t smeta) {
    action drop_() { mark_to_drop(smeta); }
    action route(bit<9> port) {
        hdr.ipv4.ttl = hdr.ipv4.ttl - 8w1;   // BUG: ipv4 may be invalid
        smeta.egress_spec = port;
    }
    table routing {
        key = { meta.next_hop: exact; }       // no validity key!
        actions = { route; drop_; }
        default_action = drop_();
    }
    apply { routing.apply(); }
}

V1Switch(RParser(), RIngress()) main;
`

func main() {
	res, err := driver.Run("buggy_router", buggyRouter, driver.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== analysis of the buggy router ==")
	fmt.Println(res.Summary())

	// Show the counterexample for the TTL bug: which rule and which
	// packet trigger it.
	for _, b := range res.InitialRep.Bugs {
		if !b.Reachable {
			continue
		}
		fmt.Printf("\nbug: %s\ncounterexample (relevant model values):\n", b.Description())
		var names []string
		for name := range b.Model {
			if strings.HasPrefix(name, "pcn_routing") || strings.HasPrefix(name, "smeta.ingress_port") {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %s = %v\n", name, b.Model[name])
		}

		// Replay the model operationally: the interpreter must land on
		// exactly this bug node.
		pl := res.Initial
		interp := &dataplane.Interp{P: pl.IR, Model: b.Model, Pass: pl.Pass}
		tr, err := interp.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replayed through the dataplane interpreter: %d steps -> %s\n",
			len(tr.Nodes), tr.Terminal)
		if tr.Terminal != b.Node {
			log.Fatal("replay diverged from the verifier's verdict!")
		}
	}

	fmt.Printf("\n== proposed fix ==\n%s", res.Fixes.Describe())
	if res.FixedSource == "" {
		log.Fatal("no fixed source produced")
	}
	fmt.Println("\n== fixed routing table (excerpt) ==")
	for _, line := range strings.Split(res.FixedSource, "\n") {
		if strings.Contains(line, "isValid()") || strings.Contains(line, "table routing") {
			fmt.Println("   ", strings.TrimSpace(line))
		}
	}

	// The fixed source must verify clean.
	res2, err := driver.Run("fixed_router", res.FixedSource, driver.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== re-verification of the fixed program ==\n%s\n", res2.Summary())
	if res2.BugsAfterInfer != 0 {
		log.Fatal("fixed program still has uncontrolled bugs")
	}
	fmt.Println("all bugs controllable: safe to deploy behind the shim.")
}
