package main

import (
	"strings"
	"testing"
)

func run(t *testing.T, src string) []finding {
	t.Helper()
	fs, err := checkSrc("package p\n" + src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fs
}

func wantClean(t *testing.T, src string) {
	t.Helper()
	if fs := run(t, src); len(fs) != 0 {
		t.Errorf("expected no findings, got %v", fs)
	}
}

func wantFinding(t *testing.T, src, msgFragment string) {
	t.Helper()
	fs := run(t, src)
	for _, f := range fs {
		if strings.Contains(f.msg, msgFragment) {
			return
		}
	}
	t.Errorf("expected a finding containing %q, got %v", msgFragment, fs)
}

func TestBalancedPushPop(t *testing.T) {
	wantClean(t, `
func f(s *S) {
	s.Push()
	s.Assert(x)
	s.Pop()
}`)
}

func TestDeferPopCoversAllExits(t *testing.T) {
	wantClean(t, `
func f(s *S) error {
	s.Push()
	defer s.Pop()
	if bad {
		return errBad
	}
	return nil
}`)
}

func TestUnpoppedAtEnd(t *testing.T) {
	wantFinding(t, `
func f(s *S) {
	s.Push()
	s.Assert(x)
}`, "unpopped solver scope")
}

func TestReturnWithOpenScope(t *testing.T) {
	wantFinding(t, `
func f(s *S) error {
	s.Push()
	if bad {
		return errBad
	}
	s.Pop()
	return nil
}`, "return with 1 unpopped solver scope")
}

func TestPopWithoutPush(t *testing.T) {
	wantFinding(t, `
func f(s *S) {
	s.Pop()
}`, "Pop without matching Push")
}

func TestUnbalancedBranch(t *testing.T) {
	wantFinding(t, `
func f(s *S) {
	if cond {
		s.Push()
	}
	s.Pop()
}`, "block changes solver Push/Pop balance")
}

func TestUnbalancedSwitchCase(t *testing.T) {
	wantFinding(t, `
func f(s *S) {
	switch mode {
	case 1:
		s.Push()
	}
	s.Pop()
}`, "case body changes solver Push/Pop balance")
}

func TestLoopBodyMustBalance(t *testing.T) {
	wantClean(t, `
func f(s *S) {
	for _, c := range conds {
		s.Push()
		s.Assert(c)
		s.Pop()
	}
}`)
}

func TestPackageHeapPushIgnored(t *testing.T) {
	// container/heap's Push/Pop are package functions with arguments, and
	// even a hypothetical niladic heap.Pop() must be excluded because the
	// receiver is an imported package name.
	wantClean(t, `
import "container/heap"

func f(h heap.Interface) {
	heap.Push(h, 1)
	heap.Pop(h)
}`)
}

func TestFuncLitCheckedIndependently(t *testing.T) {
	// The literal leaks a scope; the enclosing function is balanced.
	wantFinding(t, `
func f(s *S) {
	g := func() {
		s.Push()
	}
	g()
}`, "unpopped solver scope")
}

func TestMorePopsThanPushes(t *testing.T) {
	wantFinding(t, `
func f(s *S) {
	s.Push()
	s.Pop()
	s.Pop()
}`, "Pop without matching Push")
}
