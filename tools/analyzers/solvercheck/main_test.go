package main

import (
	"strings"
	"testing"
)

func run(t *testing.T, src string) []finding {
	t.Helper()
	fs, err := checkSrc("package p\n" + src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fs
}

func wantClean(t *testing.T, src string) {
	t.Helper()
	if fs := run(t, src); len(fs) != 0 {
		t.Errorf("expected no findings, got %v", fs)
	}
}

func wantFinding(t *testing.T, src, msgFragment string) {
	t.Helper()
	fs := run(t, src)
	for _, f := range fs {
		if strings.Contains(f.msg, msgFragment) {
			return
		}
	}
	t.Errorf("expected a finding containing %q, got %v", msgFragment, fs)
}

func TestBalancedPushPop(t *testing.T) {
	wantClean(t, `
func f(s *S) {
	s.Push()
	s.Assert(x)
	s.Pop()
}`)
}

func TestDeferPopCoversAllExits(t *testing.T) {
	wantClean(t, `
func f(s *S) error {
	s.Push()
	defer s.Pop()
	if bad {
		return errBad
	}
	return nil
}`)
}

func TestUnpoppedAtEnd(t *testing.T) {
	wantFinding(t, `
func f(s *S) {
	s.Push()
	s.Assert(x)
}`, "unpopped solver scope")
}

func TestReturnWithOpenScope(t *testing.T) {
	wantFinding(t, `
func f(s *S) error {
	s.Push()
	if bad {
		return errBad
	}
	s.Pop()
	return nil
}`, "return with 1 unpopped solver scope")
}

func TestPopWithoutPush(t *testing.T) {
	wantFinding(t, `
func f(s *S) {
	s.Pop()
}`, "Pop without matching Push")
}

func TestUnbalancedBranch(t *testing.T) {
	wantFinding(t, `
func f(s *S) {
	if cond {
		s.Push()
	}
	s.Pop()
}`, "block changes solver Push/Pop balance")
}

func TestUnbalancedSwitchCase(t *testing.T) {
	wantFinding(t, `
func f(s *S) {
	switch mode {
	case 1:
		s.Push()
	}
	s.Pop()
}`, "case body changes solver Push/Pop balance")
}

func TestLoopBodyMustBalance(t *testing.T) {
	wantClean(t, `
func f(s *S) {
	for _, c := range conds {
		s.Push()
		s.Assert(c)
		s.Pop()
	}
}`)
}

func TestPackageHeapPushIgnored(t *testing.T) {
	// container/heap's Push/Pop are package functions with arguments, and
	// even a hypothetical niladic heap.Pop() must be excluded because the
	// receiver is an imported package name.
	wantClean(t, `
import "container/heap"

func f(h heap.Interface) {
	heap.Push(h, 1)
	heap.Pop(h)
}`)
}

func TestFuncLitCheckedIndependently(t *testing.T) {
	// The literal leaks a scope; the enclosing function is balanced.
	wantFinding(t, `
func f(s *S) {
	g := func() {
		s.Push()
	}
	g()
}`, "unpopped solver scope")
}

func TestMorePopsThanPushes(t *testing.T) {
	wantFinding(t, `
func f(s *S) {
	s.Push()
	s.Pop()
	s.Pop()
}`, "Pop without matching Push")
}

// --- persistent-solver lifetime: receiver-held scopes ---

func TestReceiverScopeBalancedAcrossMethods(t *testing.T) {
	// The incremental-core shape: CheckIn leaves a scope open in the
	// solver's own state, Retract closes it. Neither method balances on
	// its own; the per-type ledger does.
	wantClean(t, `
func (s *Solver) CheckIn(cond T) Result {
	s.Push()
	s.Assert(cond)
	return s.Check()
}

func (s *Solver) Retract() {
	s.Pop()
}`)
}

func TestReceiverScopeLeakAcrossMethods(t *testing.T) {
	// A receiver-held Push with no peer method that Pops is a genuine
	// leak, not a deferred close.
	wantFinding(t, `
func (s *Solver) Open() {
	s.Push()
}`, "leak 1 receiver-held solver scope")
}

func TestReceiverScopeOverPop(t *testing.T) {
	wantFinding(t, `
func (s *Solver) Close() {
	s.Pop()
}`, "Pop 1 more receiver-held solver scope")
}

func TestReceiverChainRootedScope(t *testing.T) {
	// re.s.Push() is rooted at the receiver re: the scope lives in the
	// struct re points at, so it joins re's type ledger.
	wantClean(t, `
func (re *rechecker) open(c T) {
	re.s.Push()
	re.s.Assert(c)
}

func (re *rechecker) close() {
	re.s.Pop()
}`)
}

func TestReceiverLedgerSeparatesTypes(t *testing.T) {
	// Opener's Push must not be cancelled by Closer's Pop: the ledgers
	// are per receiver type.
	fs := run(t, `
func (a *Opener) Open() {
	a.Push()
}

func (b *Closer) Close() {
	b.Pop()
}`)
	if len(fs) != 2 {
		t.Fatalf("expected 2 findings (one per type), got %v", fs)
	}
}

func TestLocalSolverInMethodStillChecked(t *testing.T) {
	// A scope on a local variable inside a method keeps the strict
	// per-function rules: only receiver-held scopes use the ledger.
	wantFinding(t, `
func (s *Solver) audit(c T) {
	probe := New()
	probe.Push()
	probe.Assert(c)
}`, "unpopped solver scope")
}

func TestClosureInMethodSharesReceiverLedger(t *testing.T) {
	// A closure defined in a method captures the receiver; its
	// receiver-held Push joins the type ledger and is balanced by a
	// peer method's Pop.
	wantClean(t, `
func (s *Solver) openLater() func() {
	return func() {
		s.Push()
	}
}

func (s *Solver) Retract() {
	s.Pop()
}`)
}

func TestDeferredReceiverPopJoinsLedger(t *testing.T) {
	wantClean(t, `
func (s *Solver) Open() {
	s.Push()
}

func (s *Solver) Close() {
	defer s.Pop()
	s.flush()
}`)
}
