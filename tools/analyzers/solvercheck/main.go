// Command solvercheck is a repository self-check analyzer: it asserts
// that every solver Push has a matching Pop on all return paths in our
// own Go code. Leaking a Push scope silently weakens every later Check
// (the stale activation literal keeps guarding assertions), so the rule
// is enforced structurally:
//
//   - within a function, Push/Pop calls must balance by the end and at
//     every return statement (a `defer s.Pop()` counts toward every
//     exit);
//   - a nested block (if/for/switch arm) must not change the balance,
//     which is what makes the guarantee hold on all paths without a full
//     path-sensitive CFG;
//   - a Pop with no open scope is flagged immediately.
//
// It is deliberately stdlib-only (go/ast + go/parser) so it runs in CI
// as `go run ./tools/analyzers/solvercheck .` with no external analysis
// framework. Method calls whose receiver is an imported package
// identifier (e.g. heap.Push(h, x)) are ignored; solver scopes are
// niladic method calls x.Push() / x.Pop().
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

type finding struct {
	pos token.Position
	msg string
}

func main() {
	root := "."
	for _, a := range os.Args[1:] {
		if a != "./..." && a != "." {
			root = a
		}
	}
	findings, err := checkDir(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "solvercheck: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "solvercheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func checkDir(root string) ([]finding, error) {
	var findings []finding
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		// Tests are exempt: they deliberately exercise misuse (e.g. the
		// solver's Pop-without-Push panic test). The invariant the analyzer
		// protects is the production scope discipline.
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		findings = append(findings, checkFile(fset, file)...)
		return nil
	})
	return findings, err
}

// checkSrc analyzes a single source text (test helper).
func checkSrc(src string) ([]finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		return nil, err
	}
	return checkFile(fset, file), nil
}

func checkFile(fset *token.FileSet, file *ast.File) []finding {
	// Imported package names: a call heap.Push(...) is a package function,
	// not a solver scope.
	pkgs := map[string]bool{}
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := p
		if i := strings.LastIndex(p, "/"); i >= 0 {
			name = p[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		pkgs[name] = true
	}
	c := &checker{fset: fset, pkgs: pkgs}

	// Analyze every function body independently, including literals.
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				bodies = append(bodies, x.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, x.Body)
		}
		return true
	})
	for _, b := range bodies {
		c.checkBody(b)
	}
	return c.findings
}

type checker struct {
	fset     *token.FileSet
	pkgs     map[string]bool
	findings []finding
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	c.findings = append(c.findings, finding{c.fset.Position(pos), fmt.Sprintf(format, args...)})
}

// scopeCall classifies e as a solver Push/Pop call: a niladic method call
// x.Push() / x.Pop() whose receiver is not an imported package name.
func (c *checker) scopeCall(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Push" && sel.Sel.Name != "Pop" {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok && c.pkgs[id.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkBody verifies one function body. Nested function literals are
// skipped here (they are checked as their own bodies).
func (c *checker) checkBody(body *ast.BlockStmt) {
	bal, defers := c.scanBlock(body, 0, 0, true)
	if net := bal - defers; net > 0 {
		c.report(body.End()-1, "function ends with %d unpopped solver scope(s)", net)
	} else if net < 0 {
		c.report(body.End()-1, "function has %d more Pop(s) than Push(es)", -net)
	}
}

// scanBlock walks a statement list with the current open-scope balance
// and deferred-Pop count, returning the updated values. Nested blocks
// that change the balance are reported (top==false marks them).
func (c *checker) scanBlock(b *ast.BlockStmt, bal, defers int, top bool) (int, int) {
	startBal, startDefers := bal, defers
	for _, s := range b.List {
		bal, defers = c.scanStmt(s, bal, defers)
	}
	if !top && (bal != startBal || defers != startDefers) {
		c.report(b.Pos(), "block changes solver Push/Pop balance (by %d); balance scopes within the branch or use defer",
			(bal-defers)-(startBal-startDefers))
		// Contain the damage so outer reporting stays meaningful.
		bal, defers = startBal, startDefers
	}
	return bal, defers
}

func (c *checker) scanStmt(s ast.Stmt, bal, defers int) (int, int) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if kind, ok := c.scopeCall(x.X); ok {
			if kind == "Push" {
				bal++
			} else {
				if bal-defers <= 0 {
					c.report(x.Pos(), "Pop without matching Push")
				} else {
					bal--
				}
			}
		}
	case *ast.DeferStmt:
		if sel, ok := x.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Pop" && len(x.Call.Args) == 0 {
			if id, isID := sel.X.(*ast.Ident); !isID || !c.pkgs[id.Name] {
				defers++
			}
		}
	case *ast.ReturnStmt:
		if net := bal - defers; net > 0 {
			c.report(x.Pos(), "return with %d unpopped solver scope(s)", net)
		}
	case *ast.BlockStmt:
		bal, defers = c.scanBlock(x, bal, defers, false)
	case *ast.IfStmt:
		bal, defers = c.scanBlock(x.Body, bal, defers, false)
		if x.Else != nil {
			bal, defers = c.scanStmt(x.Else, bal, defers)
		}
	case *ast.ForStmt:
		bal, defers = c.scanBlock(x.Body, bal, defers, false)
	case *ast.RangeStmt:
		bal, defers = c.scanBlock(x.Body, bal, defers, false)
	case *ast.SwitchStmt:
		for _, cc := range x.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				bal, defers = c.scanCase(cl.Pos(), cl.Body, bal, defers)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range x.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				bal, defers = c.scanCase(cl.Pos(), cl.Body, bal, defers)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range x.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				bal, defers = c.scanCase(cl.Pos(), cl.Body, bal, defers)
			}
		}
	case *ast.LabeledStmt:
		bal, defers = c.scanStmt(x.Stmt, bal, defers)
	}
	return bal, defers
}

// scanCase treats a case body like a nested block: it must leave the
// balance unchanged.
func (c *checker) scanCase(pos token.Pos, stmts []ast.Stmt, bal, defers int) (int, int) {
	startBal, startDefers := bal, defers
	for _, s := range stmts {
		bal, defers = c.scanStmt(s, bal, defers)
	}
	if bal != startBal || defers != startDefers {
		c.report(pos, "case body changes solver Push/Pop balance (by %d)",
			(bal-defers)-(startBal-startDefers))
		bal, defers = startBal, startDefers
	}
	return bal, defers
}
