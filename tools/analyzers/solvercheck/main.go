// Command solvercheck is a repository self-check analyzer: it asserts
// that every solver Push has a matching Pop on all return paths in our
// own Go code. Leaking a Push scope silently weakens every later Check
// (the stale activation literal keeps guarding assertions), so the rule
// is enforced structurally:
//
//   - within a function, Push/Pop calls must balance by the end and at
//     every return statement (a `defer s.Pop()` counts toward every
//     exit);
//   - a nested block (if/for/switch arm) must not change the balance,
//     which is what makes the guarantee hold on all paths without a full
//     path-sensitive CFG;
//   - a Pop with no open scope is flagged immediately.
//
// Persistent solvers deliberately hold a scope open across method calls:
// the incremental core's CheckIn opens a scope that lives in the solver's
// own state until Retract closes it, so neither method balances on its
// own. To model that lifetime, a Push/Pop whose selector chain is rooted
// at the enclosing method's receiver (s.Push(), re.s.Pop(), including
// inside closures defined in the method) is exempt from the per-function
// rules and instead summed into a per-receiver-type ledger across all of
// that type's methods in the package. A type whose ledger does not net
// to zero — receiver-held Pushes without a peer method that Pops, or
// vice versa — is reported: the scope has no closer at all, which is a
// genuine leak rather than a deferred one.
//
// It is deliberately stdlib-only (go/ast + go/parser) so it runs in CI
// as `go run ./tools/analyzers/solvercheck .` with no external analysis
// framework. Method calls whose receiver is an imported package
// identifier (e.g. heap.Push(h, x)) are ignored; solver scopes are
// niladic method calls x.Push() / x.Pop().
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

type finding struct {
	pos token.Position
	msg string
}

func main() {
	root := "."
	for _, a := range os.Args[1:] {
		if a != "./..." && a != "." {
			root = a
		}
	}
	findings, err := checkDir(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "solvercheck: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "solvercheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func checkDir(root string) ([]finding, error) {
	c := newChecker(token.NewFileSet())
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		// Tests are exempt: they deliberately exercise misuse (e.g. the
		// solver's Pop-without-Push panic test). The invariant the analyzer
		// protects is the production scope discipline.
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(c.fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		c.checkFile(file, filepath.Dir(path))
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.finish()
	return c.findings, nil
}

// checkSrc analyzes a single source text (test helper).
func checkSrc(src string) ([]finding, error) {
	c := newChecker(token.NewFileSet())
	file, err := parser.ParseFile(c.fset, "src.go", src, 0)
	if err != nil {
		return nil, err
	}
	c.checkFile(file, "")
	c.finish()
	return c.findings, nil
}

// funcCtx is one function body to analyze, together with the method
// receiver it can see: FuncDecl methods carry their own receiver, and
// closures defined inside a method inherit it (the captured receiver
// still names the same long-lived struct).
type funcCtx struct {
	body     *ast.BlockStmt
	recvName string // receiver identifier, "" for plain functions
	recvType string // receiver type name, "" for plain functions
}

func (c *checker) checkFile(file *ast.File, dir string) {
	// Imported package names: a call heap.Push(...) is a package function,
	// not a solver scope.
	c.pkgs = map[string]bool{}
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := p
		if i := strings.LastIndex(p, "/"); i >= 0 {
			name = p[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		c.pkgs[name] = true
	}

	// Analyze every function body independently, including literals.
	// Literals nested in a method share the method's receiver context.
	var ctxs []funcCtx
	collectLits := func(root ast.Node, recvName, recvType string) {
		ast.Inspect(root, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				ctxs = append(ctxs, funcCtx{lit.Body, recvName, recvType})
			}
			return true
		})
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			collectLits(decl, "", "")
			continue
		}
		if fd.Body == nil {
			continue
		}
		recvName, recvType := receiverOf(fd)
		ctxs = append(ctxs, funcCtx{fd.Body, recvName, recvType})
		collectLits(fd.Body, recvName, recvType)
	}
	for _, fc := range ctxs {
		c.recvName, c.recvType = fc.recvName, fc.recvType
		c.typeKey = dir + "." + fc.recvType
		c.checkBody(fc.body)
	}
}

// receiverOf returns the receiver identifier and base type name of a
// method declaration ("", "" for plain functions or unnamed receivers).
func receiverOf(fd *ast.FuncDecl) (name, typeName string) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", ""
	}
	f := fd.Recv.List[0]
	if len(f.Names) != 1 || f.Names[0].Name == "_" {
		return "", ""
	}
	t := f.Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		return f.Names[0].Name, x.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := x.X.(*ast.Ident); ok {
			return f.Names[0].Name, id.Name
		}
	case *ast.IndexListExpr: // generic receiver T[P1, P2]
		if id, ok := x.X.(*ast.Ident); ok {
			return f.Names[0].Name, id.Name
		}
	}
	return "", ""
}

// typeLedger accumulates receiver-held scope traffic for one receiver
// type across every method of that type in the package.
type typeLedger struct {
	typeName string
	net      int
	pushPos  token.Pos // first receiver-held Push, for reporting leaks
	popPos   token.Pos // first receiver-held Pop, for reporting over-pops
}

type checker struct {
	fset     *token.FileSet
	pkgs     map[string]bool
	findings []finding

	// Per-body receiver context, set by checkFile before each checkBody.
	recvName string
	recvType string
	typeKey  string // package dir + receiver type, the ledger key

	ledgers map[string]*typeLedger
}

func newChecker(fset *token.FileSet) *checker {
	return &checker{fset: fset, ledgers: map[string]*typeLedger{}}
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	c.findings = append(c.findings, finding{c.fset.Position(pos), fmt.Sprintf(format, args...)})
}

// ledgerAdd records a receiver-held Push (+1) or Pop (-1) against the
// current receiver type.
func (c *checker) ledgerAdd(kind string, pos token.Pos) {
	l := c.ledgers[c.typeKey]
	if l == nil {
		l = &typeLedger{typeName: c.recvType}
		c.ledgers[c.typeKey] = l
	}
	if kind == "Push" {
		l.net++
		if l.pushPos == token.NoPos {
			l.pushPos = pos
		}
	} else {
		l.net--
		if l.popPos == token.NoPos {
			l.popPos = pos
		}
	}
}

// finish reports every receiver type whose methods' summed Push/Pop
// traffic does not net to zero: a persistent scope with no closer.
func (c *checker) finish() {
	keys := make([]string, 0, len(c.ledgers))
	for k := range c.ledgers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		l := c.ledgers[k]
		switch {
		case l.net > 0:
			c.report(l.pushPos,
				"methods of %s leak %d receiver-held solver scope(s): no peer method Pops what they Push",
				l.typeName, l.net)
		case l.net < 0:
			c.report(l.popPos,
				"methods of %s Pop %d more receiver-held solver scope(s) than they Push",
				l.typeName, -l.net)
		}
	}
}

// scopeCall classifies e as a solver Push/Pop call: a niladic method call
// x.Push() / x.Pop() whose receiver is not an imported package name.
// receiverHeld reports whether the call's selector chain is rooted at
// the enclosing method's receiver (s.Push(), re.s.Pop()), meaning the
// scope lives in the receiver's state rather than the function frame.
func (c *checker) scopeCall(e ast.Expr) (kind string, receiverHeld, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	if sel.Sel.Name != "Push" && sel.Sel.Name != "Pop" {
		return "", false, false
	}
	if id, isID := sel.X.(*ast.Ident); isID && c.pkgs[id.Name] {
		return "", false, false
	}
	root := rootIdent(sel.X)
	held := root != nil && c.recvName != "" && root.Name == c.recvName
	return sel.Sel.Name, held, true
}

// rootIdent walks a selector chain (re.s.sub) down to its base
// identifier, or nil if the chain is rooted elsewhere (a call, an index
// expression, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkBody verifies one function body. Nested function literals are
// skipped here (they are checked as their own bodies).
func (c *checker) checkBody(body *ast.BlockStmt) {
	bal, defers := c.scanBlock(body, 0, 0, true)
	if net := bal - defers; net > 0 {
		c.report(body.End()-1, "function ends with %d unpopped solver scope(s)", net)
	} else if net < 0 {
		c.report(body.End()-1, "function has %d more Pop(s) than Push(es)", -net)
	}
}

// scanBlock walks a statement list with the current open-scope balance
// and deferred-Pop count, returning the updated values. Nested blocks
// that change the balance are reported (top==false marks them).
func (c *checker) scanBlock(b *ast.BlockStmt, bal, defers int, top bool) (int, int) {
	startBal, startDefers := bal, defers
	for _, s := range b.List {
		bal, defers = c.scanStmt(s, bal, defers)
	}
	if !top && (bal != startBal || defers != startDefers) {
		c.report(b.Pos(), "block changes solver Push/Pop balance (by %d); balance scopes within the branch or use defer",
			(bal-defers)-(startBal-startDefers))
		// Contain the damage so outer reporting stays meaningful.
		bal, defers = startBal, startDefers
	}
	return bal, defers
}

func (c *checker) scanStmt(s ast.Stmt, bal, defers int) (int, int) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if kind, held, ok := c.scopeCall(x.X); ok {
			switch {
			case held:
				c.ledgerAdd(kind, x.Pos())
			case kind == "Push":
				bal++
			case bal-defers <= 0:
				c.report(x.Pos(), "Pop without matching Push")
			default:
				bal--
			}
		}
	case *ast.DeferStmt:
		if sel, ok := x.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Pop" && len(x.Call.Args) == 0 {
			if id, isID := sel.X.(*ast.Ident); !isID || !c.pkgs[id.Name] {
				if root := rootIdent(sel.X); root != nil && c.recvName != "" && root.Name == c.recvName {
					c.ledgerAdd("Pop", x.Pos())
				} else {
					defers++
				}
			}
		}
	case *ast.ReturnStmt:
		if net := bal - defers; net > 0 {
			c.report(x.Pos(), "return with %d unpopped solver scope(s)", net)
		}
	case *ast.BlockStmt:
		bal, defers = c.scanBlock(x, bal, defers, false)
	case *ast.IfStmt:
		bal, defers = c.scanBlock(x.Body, bal, defers, false)
		if x.Else != nil {
			bal, defers = c.scanStmt(x.Else, bal, defers)
		}
	case *ast.ForStmt:
		bal, defers = c.scanBlock(x.Body, bal, defers, false)
	case *ast.RangeStmt:
		bal, defers = c.scanBlock(x.Body, bal, defers, false)
	case *ast.SwitchStmt:
		for _, cc := range x.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				bal, defers = c.scanCase(cl.Pos(), cl.Body, bal, defers)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range x.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				bal, defers = c.scanCase(cl.Pos(), cl.Body, bal, defers)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range x.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				bal, defers = c.scanCase(cl.Pos(), cl.Body, bal, defers)
			}
		}
	case *ast.LabeledStmt:
		bal, defers = c.scanStmt(x.Stmt, bal, defers)
	}
	return bal, defers
}

// scanCase treats a case body like a nested block: it must leave the
// balance unchanged.
func (c *checker) scanCase(pos token.Pos, stmts []ast.Stmt, bal, defers int) (int, int) {
	startBal, startDefers := bal, defers
	for _, s := range stmts {
		bal, defers = c.scanStmt(s, bal, defers)
	}
	if bal != startBal || defers != startDefers {
		c.report(pos, "case body changes solver Push/Pop balance (by %d)",
			(bal-defers)-(startBal-startDefers))
		bal, defers = startBal, startDefers
	}
	return bal, defers
}
