package main

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the test's working directory to the module
// root (the directory containing go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func TestCollectsExprKinds(t *testing.T) {
	root := repoRoot(t)
	kinds, err := exprStructs(filepath.Join(root, "internal/prop/ast.go"))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, k := range kinds {
		got[k] = true
	}
	for _, probe := range []string{
		"PathExpr", "IntExpr", "BoolExpr", "ValidExpr",
		"HitExpr", "ActionExpr", "UnaryExpr", "BinaryExpr",
	} {
		if !got[probe] {
			t.Errorf("exprStructs missed %s (got %v)", probe, kinds)
		}
	}
	if got["Expr"] {
		t.Error("exprStructs leaked the Expr interface into the struct set")
	}
}

func TestStarCaseIdents(t *testing.T) {
	root := repoRoot(t)
	cases, err := starCaseIdents(filepath.Join(root, "internal/prop/check.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !cases["PathExpr"] || !cases["BinaryExpr"] {
		t.Errorf("starCaseIdents missed expected cases in check.go: %v", cases)
	}
}

// TestWalkersExhaustive is the analyzer's own contract run as a unit
// test: every AST kind has a case in every walker file. CI also runs
// the command form.
func TestWalkersExhaustive(t *testing.T) {
	root := repoRoot(t)
	kinds, err := exprStructs(filepath.Join(root, "internal/prop/ast.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, wf := range walkerFiles {
		cases, err := starCaseIdents(filepath.Join(root, wf.file))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range kinds {
			if !cases[k] {
				t.Errorf("%s: *%s has no explicit case", wf.file, k)
			}
		}
	}
}
