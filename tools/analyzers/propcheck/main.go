// Command propcheck is a repository self-check analyzer enforcing the
// exhaustiveness of the property-DSL expression walkers. The DSL's AST
// (internal/prop/ast.go) is a closed set of *Expr struct kinds, and
// three files each contain a type switch that must cover every kind:
//
//   - internal/prop/check.go types each expression against the lowered
//     program. A missing case would report "unsupported expression"
//     (or worse, mistype) instead of handling a newly added kind.
//   - internal/prop/compile.go lowers checked expressions to smt terms.
//     A missing case panics at instrumentation time.
//   - internal/prop/vars.go collects the data variables an expression
//     reads for witness rendering. A missing case silently drops
//     variables from witnesses — the quietest failure of the three.
//
// The check is purely syntactic: it collects the exported struct types
// named *Expr declared in ast.go, then scans the three walker files for
// `case *Kind:` clauses. Unlike taintcheck, the walkers live in the
// same package as the AST, so case expressions are bare identifiers
// under a star (`*PathExpr`), not package selectors. Missing names fail
// the build. Stdlib-only (go/ast + go/parser); CI runs it as
// `go run ./tools/analyzers/propcheck .`.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// walkerFiles lists, per file, what a missing case breaks.
var walkerFiles = []struct{ file, consequence string }{
	{"internal/prop/check.go", "typechecking rejects the kind"},
	{"internal/prop/compile.go", "compilation panics on the kind"},
	{"internal/prop/vars.go", "witnesses silently omit its variables"},
}

func main() {
	root := "."
	for _, a := range os.Args[1:] {
		if a != "./..." && a != "." {
			root = a
		}
	}

	kinds, err := exprStructs(filepath.Join(root, "internal/prop/ast.go"))
	if err != nil {
		fatalf("%v", err)
	}
	if len(kinds) == 0 {
		fatalf("no *Expr struct types found — did internal/prop/ast.go move?")
	}

	var problems []string
	for _, wf := range walkerFiles {
		cases, err := starCaseIdents(filepath.Join(root, wf.file))
		if err != nil {
			fatalf("%v", err)
		}
		for _, k := range kinds {
			if !cases[k] {
				problems = append(problems,
					fmt.Sprintf("%s: *%s has no explicit case (%s)", wf.file, k, wf.consequence))
			}
		}
	}

	sort.Strings(problems)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "propcheck: %d missing expression case(s)\n", len(problems))
		os.Exit(1)
	}
}

// exprStructs collects the exported struct type names ending in "Expr"
// declared in file. The Expr interface itself is excluded (it is not a
// struct), as are unexported helpers.
func exprStructs(file string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, 0)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
				continue
			}
			name := ts.Name.Name
			if ast.IsExported(name) && strings.HasSuffix(name, "Expr") {
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// starCaseIdents collects every identifier appearing as `*Ident` in a
// case clause expression anywhere in file (the shape of same-package
// type-switch cases over pointer-to-struct kinds).
func starCaseIdents(file string) (map[string]bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, 0)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			star, ok := e.(*ast.StarExpr)
			if !ok {
				continue
			}
			if id, ok := star.X.(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
		return true
	})
	return out, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "propcheck: "+format+"\n", args...)
	os.Exit(2)
}
