// Command taintcheck is a repository self-check analyzer enforcing the
// exhaustiveness of the information-flow transfer functions. The taint
// layer has two halves that must agree operator-by-operator:
//
//   - internal/ir/taint.go holds the per-operator shadow transfer
//     (taintOfRaw). Every smt.Op must appear as an explicit case there:
//     a new term operator with no transfer rule would either panic at
//     lowering time or — worse, if someone removed the panic — silently
//     under-taint.
//   - internal/analysis/taint.go holds the dataflow transfer over IR
//     nodes. Every ir.NodeKind must appear as an explicit case for the
//     same reason: an unclassified node kind must be a loud decision,
//     not an accidental fall-through.
//
// The check is purely syntactic: it collects the exported Op constants
// from internal/smt and the NodeKind constants from internal/ir, then
// scans the two transfer files for `case` clauses mentioning
// `smt.<Op>` / `ir.<Kind>` selectors. Missing names fail the build.
// Like the other analyzers it is stdlib-only (go/ast + go/parser) and
// runs in CI as `go run ./tools/analyzers/taintcheck .`.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
)

func main() {
	root := "."
	for _, a := range os.Args[1:] {
		if a != "./..." && a != "." {
			root = a
		}
	}
	var problems []string

	ops, err := constNames(filepath.Join(root, "internal/smt/term.go"), "Op")
	if err != nil {
		fatalf("%v", err)
	}
	if len(ops) == 0 {
		fatalf("no smt.Op constants found — did internal/smt/term.go move?")
	}
	irCases, err := caseSelectors(filepath.Join(root, "internal/ir/taint.go"), "smt")
	if err != nil {
		fatalf("%v", err)
	}
	for _, op := range ops {
		if !irCases[op] {
			problems = append(problems,
				fmt.Sprintf("internal/ir/taint.go: smt.%s has no explicit taint transfer case", op))
		}
	}

	kinds, err := constNames(filepath.Join(root, "internal/ir/ir.go"), "NodeKind")
	if err != nil {
		fatalf("%v", err)
	}
	if len(kinds) == 0 {
		fatalf("no ir.NodeKind constants found — did internal/ir/ir.go move?")
	}
	anCases, err := caseSelectors(filepath.Join(root, "internal/analysis/taint.go"), "ir")
	if err != nil {
		fatalf("%v", err)
	}
	for _, k := range kinds {
		if !anCases[k] {
			problems = append(problems,
				fmt.Sprintf("internal/analysis/taint.go: ir.%s has no explicit label transfer case", k))
		}
	}

	sort.Strings(problems)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "taintcheck: %d missing transfer case(s)\n", len(problems))
		os.Exit(1)
	}
}

// constNames collects the names of constants of the given type declared
// in file. It handles iota blocks: a ValueSpec with the named type
// starts a run, and following specs in the same const block without an
// explicit type (and without values, or repeating iota) belong to it.
func constNames(file, typeName string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, 0)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		active := false
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			switch {
			case vs.Type != nil:
				id, ok := vs.Type.(*ast.Ident)
				active = ok && id.Name == typeName
			case len(vs.Values) > 0 && !isIota(vs.Values[0]):
				active = false
			}
			if !active {
				continue
			}
			for _, n := range vs.Names {
				if n.Name != "_" {
					names = append(names, n.Name)
				}
			}
		}
	}
	return names, nil
}

func isIota(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == "iota"
	case *ast.BinaryExpr:
		return isIota(x.X) || isIota(x.Y)
	}
	return false
}

// caseSelectors collects every `pkg.Name` selector appearing in a case
// clause expression anywhere in file.
func caseSelectors(file, pkg string) (map[string]bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, 0)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			ast.Inspect(e, func(m ast.Node) bool {
				sel, ok := m.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == pkg {
					out[sel.Sel.Name] = true
				}
				return true
			})
		}
		return true
	})
	return out, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "taintcheck: "+format+"\n", args...)
	os.Exit(2)
}
