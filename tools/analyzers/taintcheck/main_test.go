package main

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the test's working directory to the module
// root (the directory containing go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func TestCollectsOpConstants(t *testing.T) {
	root := repoRoot(t)
	ops, err := constNames(filepath.Join(root, "internal/smt/term.go"), "Op")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, o := range ops {
		want[o] = true
	}
	for _, probe := range []string{"OpTrue", "OpIte", "OpConcat", "OpSExt"} {
		if !want[probe] {
			t.Errorf("constNames missed %s (got %v)", probe, ops)
		}
	}
	if len(ops) < 20 {
		t.Errorf("suspiciously few Op constants: %d", len(ops))
	}
}

func TestCollectsNodeKinds(t *testing.T) {
	root := repoRoot(t)
	kinds, err := constNames(filepath.Join(root, "internal/ir/ir.go"), "NodeKind")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	for _, probe := range []string{"Nop", "Assign", "Havoc", "Branch", "BugTerm"} {
		if !want[probe] {
			t.Errorf("constNames missed %s (got %v)", probe, kinds)
		}
	}
	if want["BugInvalidHeaderRead"] {
		t.Error("constNames leaked BugKind constants into the NodeKind set")
	}
}

// TestTransfersExhaustive is the analyzer's own contract run as a unit
// test: every Op has an ir transfer case, every NodeKind an analysis
// case. CI also runs the command form.
func TestTransfersExhaustive(t *testing.T) {
	root := repoRoot(t)
	ops, err := constNames(filepath.Join(root, "internal/smt/term.go"), "Op")
	if err != nil {
		t.Fatal(err)
	}
	irCases, err := caseSelectors(filepath.Join(root, "internal/ir/taint.go"), "smt")
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if !irCases[op] {
			t.Errorf("smt.%s has no taint transfer case in internal/ir/taint.go", op)
		}
	}
	kinds, err := constNames(filepath.Join(root, "internal/ir/ir.go"), "NodeKind")
	if err != nil {
		t.Fatal(err)
	}
	anCases, err := caseSelectors(filepath.Join(root, "internal/analysis/taint.go"), "ir")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kinds {
		if !anCases[k] {
			t.Errorf("ir.%s has no label transfer case in internal/analysis/taint.go", k)
		}
	}
}
