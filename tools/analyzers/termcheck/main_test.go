package main

import (
	"strings"
	"testing"
)

func mustFindings(t *testing.T, src string) []finding {
	t.Helper()
	fs, err := checkSrc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fs
}

func TestFlagsTermLiteral(t *testing.T) {
	src := `package p
import "bf4/internal/smt"
func f() *smt.Term {
	t := &smt.Term{}
	return t
}`
	fs := mustFindings(t, src)
	if len(fs) != 1 || !strings.Contains(fs[0].msg, "composite literal") {
		t.Fatalf("want 1 composite-literal finding, got %v", fs)
	}
}

func TestFlagsLiteralComparison(t *testing.T) {
	src := `package p
import "bf4/internal/smt"
func f(x *smt.Term) bool {
	return *x == smt.Term{}
}`
	fs := mustFindings(t, src)
	// Both the comparison and the literal itself are flagged.
	if len(fs) != 2 {
		t.Fatalf("want 2 findings (comparison + literal), got %v", fs)
	}
	found := false
	for _, f := range fs {
		if strings.Contains(f.msg, "never pointer-equals") {
			found = true
		}
	}
	if !found {
		t.Fatalf("comparison finding missing: %v", fs)
	}
}

func TestFlagsDiscardedConstructor(t *testing.T) {
	src := `package p
func f(fac interface{ Eq(a, b int) int }) {
	fac.Eq(1, 2)
}`
	fs := mustFindings(t, src)
	if len(fs) != 1 || !strings.Contains(fs[0].msg, "discarded") {
		t.Fatalf("want 1 discard finding, got %v", fs)
	}
}

func TestAllowsFactoryUsage(t *testing.T) {
	src := `package p
import "bf4/internal/smt"
func f(fac *smt.Factory, a, b *smt.Term) *smt.Term {
	eq := fac.Eq(a, b)
	if a == b { // pointer comparison of interned terms is the point
		return eq
	}
	return fac.Ite(eq, a, b)
}`
	if fs := mustFindings(t, src); len(fs) != 0 {
		t.Fatalf("clean code flagged: %v", fs)
	}
}

func TestAmbiguousNamesNotFlagged(t *testing.T) {
	src := `package p
import "sync"
func f() {
	var wg sync.WaitGroup
	wg.Add(1) // Add is deliberately not in the discard set
	wg.Done()
}`
	if fs := mustFindings(t, src); len(fs) != 0 {
		t.Fatalf("wg.Add flagged: %v", fs)
	}
}
