// Command termcheck is a repository self-check analyzer enforcing the
// smt.Term usage contract in our own Go code. Terms are hash-consed:
// every structurally equal term is one pointer, which is exactly what
// makes pointer comparison, map keys, and the Term.ID() memo tables
// sound. The contract breaks if code builds a Term outside the factory
// or compares against a freshly-built struct, so three misuses are
// flagged:
//
//   - a `Term{...}` / `&Term{...}` / `smt.Term{...}` composite literal
//     anywhere outside internal/smt itself — terms must come from
//     factory constructors, or interning (and with it pointer equality)
//     silently breaks;
//   - an == or != comparison where either side is such a composite
//     literal — a fresh struct never pointer-equals an interned term,
//     so the comparison is vacuously false/true;
//   - a statement that calls an unambiguous factory constructor and
//     discards the result — constructors are pure (they intern and
//     return; they never mutate the factory observably), so a discarded
//     result is always a bug, usually a missing assignment.
//
// Only constructor names unique to the factory are checked for the
// discard rule (Ite, Eq, BVAnd, Extract, ...). Generic names that
// collide with common stdlib methods (Add, Not, And, Or, Xor, Mul, Sub,
// Neg, Bool, Var) are deliberately excluded: flagging wg.Add(1) or
// big.Int.Not would drown the signal in false positives.
//
// Like solvercheck it is stdlib-only (go/ast + go/parser) and runs in CI
// as `go run ./tools/analyzers/termcheck .`.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

type finding struct {
	pos token.Position
	msg string
}

// discardable lists factory constructor names unique enough that a call
// statement discarding the result is always a bug. See the package
// comment for why ambiguous names (Add, Not, ...) are excluded.
var discardable = map[string]bool{
	"Ite": true, "Eq": true, "Distinct": true, "Implies": true, "Iff": true,
	"Ult": true, "Ule": true, "Ugt": true, "Uge": true,
	"Slt": true, "Sle": true,
	"BVAnd": true, "BVOr": true, "BVXor": true, "BVNot": true,
	"Shl": true, "Lshr": true, "Ashr": true,
	"Concat": true, "Extract": true, "ZExt": true, "SExt": true, "Resize": true,
	"BVConst": true, "BVConst64": true, "BoolVar": true, "BVVar": true,
	"Rebuild": true,
}

func main() {
	root := "."
	for _, a := range os.Args[1:] {
		if a != "./..." && a != "." {
			root = a
		}
	}
	findings, err := checkDir(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "termcheck: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "termcheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func checkDir(root string) ([]finding, error) {
	var findings []finding
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			// internal/smt is the factory: it is the one place allowed to
			// build Term structs directly.
			if filepath.ToSlash(path) == filepath.ToSlash(filepath.Join(root, "internal/smt")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		findings = append(findings, checkFile(fset, file)...)
		return nil
	})
	return findings, err
}

// checkSrc analyzes a single source text (test helper).
func checkSrc(src string) ([]finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		return nil, err
	}
	return checkFile(fset, file), nil
}

func checkFile(fset *token.FileSet, file *ast.File) []finding {
	c := &checker{fset: fset}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			if c.isTermType(x.Type) {
				c.report(x.Pos(), "smt.Term composite literal: terms must be built through factory constructors (hash-consing breaks otherwise)")
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				if c.isTermLiteral(x.X) || c.isTermLiteral(x.Y) {
					c.report(x.Pos(), "comparing a term with a freshly-built smt.Term struct: a fresh struct never pointer-equals an interned term")
				}
			}
		case *ast.ExprStmt:
			if name, ok := c.factoryCall(x.X); ok {
				c.report(x.Pos(), "result of factory constructor %s discarded: constructors are pure, the built term is lost", name)
			}
		}
		return true
	})
	return c.findings
}

type checker struct {
	fset     *token.FileSet
	findings []finding
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	c.findings = append(c.findings, finding{c.fset.Position(pos), fmt.Sprintf(format, args...)})
}

// isTermType matches the type expression of a composite literal naming
// the term struct: Term or smt.Term (any package alias ending in the
// selector Term is treated as the real thing — the repo has exactly one
// type of that name).
func (c *checker) isTermType(t ast.Expr) bool {
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name == "Term"
	case *ast.SelectorExpr:
		return x.Sel.Name == "Term"
	}
	return false
}

// isTermLiteral matches Term{...}, &Term{...}, smt.Term{...} and
// &smt.Term{...} expressions (with or without parens).
func (c *checker) isTermLiteral(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return c.isTermType(x.Type)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				return c.isTermType(cl.Type)
			}
		}
	}
	return false
}

// factoryCall matches a discarded x.Ctor(...) method call where Ctor is
// an unambiguous factory constructor name.
func (c *checker) factoryCall(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !discardable[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}
