// Command benchcmp compares two bench artifacts, dispatching on their
// "bench" field.
//
// table1 mode compares two BENCH_table1.json artifacts produced by
// `bf4-bench -run table1 -json` — conventionally incremental solver core
// ON first, OFF second — and enforces the bench trajectory:
//
//	benchcmp [-max-conflict-ratio 1.05] on.json off.json
//
// It prints a per-program table of conflict and propagation deltas, then
// exits non-zero if
//
//   - the two artifacts disagree on any verdict column (program set,
//     bug counts, keys) — incremental mode must never change verdicts, or
//   - total conflicts in the ON artifact exceed the OFF artifact by more
//     than the allowed ratio — the incremental core must not regress
//     total solver effort.
//
// It also reports on how many programs conflicts and propagations went
// down; the CI log keeps that trajectory visible over time.
//
// shimscale mode compares two BENCH_shimscale.json artifacts produced by
// `bf4-bench -run shimscale -fastpath both -json` — fast path ON first,
// OFF second:
//
//	benchcmp [-min-speedup 2.0] BENCH_shimscale.json BENCH_shimscale_off.json
//
// It fails if the two tiers disagree on any decision count (the fast
// path must never change verdicts), if the ON artifact took any
// slow-path evaluations the OFF artifact cannot account for, or if the
// fast path's update throughput is below -min-speedup times the slow
// path's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchRow struct {
	Program        string `json:"program"`
	LoC            int    `json:"loc"`
	Bugs           int    `json:"bugs"`
	BugsAfterInfer int    `json:"bugs_after_infer"`
	BugsAfterFixes int    `json:"bugs_after_fixes"`
	KeysAdded      int    `json:"keys_added"`
	Conflicts      int64  `json:"conflicts"`
	Propagations   int64  `json:"propagations"`
	CNFVars        int64  `json:"cnf_vars"`
	CNFClauses     int64  `json:"cnf_clauses"`
	Discharged     int64  `json:"discharged"`
}

type benchFile struct {
	Bench             string     `json:"bench"`
	Incremental       bool       `json:"incremental"`
	Programs          int        `json:"programs"`
	TotalConflicts    int64      `json:"total_conflicts"`
	TotalPropagations int64      `json:"total_propagations"`
	Rows              []benchRow `json:"rows"`
}

// shimscaleFile mirrors experiments.ShimScaleResult.
type shimscaleFile struct {
	Bench         string  `json:"bench"`
	Fastpath      bool    `json:"fastpath"`
	Scale         int     `json:"scale"`
	Updates       int64   `json:"updates"`
	Accepted      int64   `json:"accepted"`
	Rejected      int64   `json:"rejected"`
	FastHits      int64   `json:"fast_hits"`
	SlowHits      int64   `json:"slow_hits"`
	ElapsedNs     int64   `json:"elapsed_ns"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Bench != "table1" {
		return nil, fmt.Errorf("%s: bench is %q, want table1", path, f.Bench)
	}
	return &f, nil
}

// benchKind reads just the artifact's bench discriminator.
func benchKind(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var k struct {
		Bench string `json:"bench"`
	}
	if err := json.Unmarshal(data, &k); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return k.Bench, nil
}

func main() {
	maxRatio := flag.Float64("max-conflict-ratio", 1.05, "table1: fail if on-conflicts exceed off-conflicts by more than this factor")
	minSpeedup := flag.Float64("min-speedup", 2.0, "shimscale: fail if fast-path throughput is below this multiple of the slow path")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-max-conflict-ratio 1.05] [-min-speedup 2.0] on.json off.json")
		os.Exit(2)
	}
	kind, err := benchKind(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	if kind == "shimscale" {
		compareShimscale(flag.Arg(0), flag.Arg(1), *minSpeedup)
		return
	}
	on, err := load(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	off, err := load(flag.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}

	offRows := map[string]benchRow{}
	for _, r := range off.Rows {
		offRows[r.Program] = r
	}
	if len(on.Rows) != len(off.Rows) {
		fatalf("program sets differ: %d rows in %s, %d in %s", len(on.Rows), flag.Arg(0), len(off.Rows), flag.Arg(1))
	}

	verdictsOK := true
	reducedConflicts, reducedProps := 0, 0
	fmt.Printf("%-22s %12s %12s %8s %14s %14s %8s\n",
		"program", "conflicts", "conflicts0", "Δ%", "propagations", "props0", "Δ%")
	for _, a := range on.Rows {
		b, ok := offRows[a.Program]
		if !ok {
			fatalf("program %s present only in %s", a.Program, flag.Arg(0))
		}
		if a.Bugs != b.Bugs || a.BugsAfterInfer != b.BugsAfterInfer ||
			a.BugsAfterFixes != b.BugsAfterFixes || a.KeysAdded != b.KeysAdded {
			fmt.Fprintf(os.Stderr, "VERDICT MISMATCH %s: on=(%d,%d,%d,%d) off=(%d,%d,%d,%d)\n",
				a.Program, a.Bugs, a.BugsAfterInfer, a.BugsAfterFixes, a.KeysAdded,
				b.Bugs, b.BugsAfterInfer, b.BugsAfterFixes, b.KeysAdded)
			verdictsOK = false
		}
		if a.Conflicts < b.Conflicts {
			reducedConflicts++
		}
		if a.Propagations < b.Propagations {
			reducedProps++
		}
		fmt.Printf("%-22s %12d %12d %7.1f%% %14d %14d %7.1f%%\n",
			a.Program, a.Conflicts, b.Conflicts, delta(a.Conflicts, b.Conflicts),
			a.Propagations, b.Propagations, delta(a.Propagations, b.Propagations))
	}

	fmt.Printf("\ntotal conflicts: on=%d off=%d (%.1f%%); propagations: on=%d off=%d (%.1f%%)\n",
		on.TotalConflicts, off.TotalConflicts, delta(on.TotalConflicts, off.TotalConflicts),
		on.TotalPropagations, off.TotalPropagations, delta(on.TotalPropagations, off.TotalPropagations))
	fmt.Printf("conflicts reduced on %d/%d programs; propagations reduced on %d/%d\n",
		reducedConflicts, len(on.Rows), reducedProps, len(on.Rows))

	if !verdictsOK {
		fatalf("incremental mode changed verdicts")
	}
	limit := float64(off.TotalConflicts) * *maxRatio
	if float64(on.TotalConflicts) > limit {
		fatalf("total conflicts regressed: on=%d > %.2f × off=%d",
			on.TotalConflicts, *maxRatio, off.TotalConflicts)
	}
	fmt.Println("benchcmp: OK")
}

// compareShimscale enforces the fast-path contract between a fastpath=on
// artifact and its fastpath=off twin: identical decisions, identical
// total assertion-evaluation counts, and a real speedup.
func compareShimscale(onPath, offPath string, minSpeedup float64) {
	loadScale := func(path string, wantFast bool) *shimscaleFile {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		var f shimscaleFile
		if err := json.Unmarshal(data, &f); err != nil {
			fatalf("%s: %v", path, err)
		}
		if f.Bench != "shimscale" {
			fatalf("%s: bench is %q, want shimscale", path, f.Bench)
		}
		if f.Fastpath != wantFast {
			fatalf("%s: fastpath=%v artifact in the %v position", path, f.Fastpath, wantFast)
		}
		return &f
	}
	on := loadScale(onPath, true)
	off := loadScale(offPath, false)

	fmt.Printf("%-10s %10s %10s %10s %12s %12s %14s\n",
		"fastpath", "updates", "accepted", "rejected", "fast-evals", "slow-evals", "updates/s")
	for _, f := range []*shimscaleFile{on, off} {
		fmt.Printf("%-10v %10d %10d %10d %12d %12d %14.0f\n",
			f.Fastpath, f.Updates, f.Accepted, f.Rejected, f.FastHits, f.SlowHits, f.UpdatesPerSec)
	}

	if on.Scale != off.Scale || on.Updates != off.Updates {
		fatalf("arms ran different workloads: scale %d/%d, updates %d/%d",
			on.Scale, off.Scale, on.Updates, off.Updates)
	}
	if on.Accepted != off.Accepted || on.Rejected != off.Rejected {
		fatalf("DECISION MISMATCH: on=%d/%d off=%d/%d accepted/rejected — the fast path changed verdicts",
			on.Accepted, on.Rejected, off.Accepted, off.Rejected)
	}
	if off.FastHits != 0 {
		fatalf("off artifact took the fast path %d times", off.FastHits)
	}
	if on.FastHits == 0 {
		fatalf("on artifact never took the fast path")
	}
	if got, want := on.FastHits+on.SlowHits, off.SlowHits; got != want {
		fatalf("evaluation counts differ: on=%d (fast+slow) off=%d — tiers did not judge the same assertions", got, want)
	}
	speedup := on.UpdatesPerSec / off.UpdatesPerSec
	fmt.Printf("\nspeedup: %.2fx (minimum %.2fx)\n", speedup, minSpeedup)
	if speedup < minSpeedup {
		fatalf("fast path speedup %.2fx below required %.2fx", speedup, minSpeedup)
	}
	fmt.Println("benchcmp: OK")
}

// delta is the percentage change of on relative to off (negative =
// improvement).
func delta(on, off int64) float64 {
	if off == 0 {
		if on == 0 {
			return 0
		}
		return 100
	}
	return 100 * float64(on-off) / float64(off)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcmp: "+format+"\n", args...)
	os.Exit(1)
}
