module bf4

go 1.22
