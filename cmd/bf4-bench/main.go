// Command bf4-bench regenerates the paper's evaluation artifacts (the
// experiment index in DESIGN.md). Each experiment prints the rows/series
// the paper reports; EXPERIMENTS.md records paper-vs-measured values.
//
// Usage:
//
//	bf4-bench -run table1 [-switch-scale 16] [-j 4] [-stable] [-incremental on|off] [-json]
//	bf4-bench -run rewrite [-json]
//	bf4-bench -run incremental [-json]
//	bf4-bench -run shimfleet [-json]
//	bf4-bench -run shimscale [-fastpath on|off|both] [-updates N] [-decision-log path] [-json]
//	bf4-bench -run slicing|infer|multitable|dontcare|p4v|vera|shim|overhead|stages
//	bf4-bench -run all
//
// -json on table1 writes BENCH_table1.json: the verdict columns joined
// with deterministic per-program solver counters (CNF vars/clauses,
// conflicts, propagations, discharge counts — no wall-clock), labeled
// with the -incremental mode. The bench-trajectory CI job produces one
// artifact per mode and compares them with tools/benchcmp.
//
// -j bounds the worker pool for experiments that run independent
// verifications (table1's corpus loop, each ablation's two arms);
// 0 means GOMAXPROCS, 1 reproduces the paper's serial timing
// methodology. All counts are identical for every -j. -stable renders
// table1 without its runtime column so outputs from different -j values
// (or machines) can be diffed byte-for-byte — CI does exactly that.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bf4/internal/experiments"
)

func main() {
	var (
		run         = flag.String("run", "all", "experiment: table1, discharge, rewrite, incremental, slicing, infer, multitable, dontcare, p4v, vera, shim, shimfleet, shimscale, overhead, stages, all")
		switchScale = flag.Int("switch-scale", 8, "generated switch scale for switch-based experiments")
		updates     = flag.Int("updates", 2000, "controller updates for the shim experiment (shimscale defaults to 1000000 unless set explicitly)")
		fastpath    = flag.String("fastpath", "on", "shimscale: bytecode fast path on|off|both (both replays each tier and reports the speedup)")
		decisionLog = flag.String("decision-log", "", "shimscale: write per-update decision logs to <path>.on / <path>.off for byte-diffing the tiers")
		veraBudget  = flag.Duration("vera-budget", 20*time.Second, "budget for symbolic Vera exploration")
		jobs        = flag.Int("j", 0, "worker pool size for parallel experiments (0 = GOMAXPROCS, 1 = serial)")
		stable      = flag.Bool("stable", false, "render table1 without the runtime column (byte-stable across -j values and machines)")
		jsonOut     = flag.Bool("json", false, "additionally write machine-readable results (table1: BENCH_table1.json; rewrite: BENCH_rewrite.json; incremental: BENCH_incremental.json)")
		metrics     = flag.Bool("metrics", false, "table1: append a per-program metrics table (deterministic solver/pipeline counters); the table1 section itself is unchanged")
		incrMode    = flag.String("incremental", "on", "table1: incremental solver core on|off (verdict columns are identical either way; solver-effort counters move)")
	)
	flag.Parse()

	incremental := true
	switch *incrMode {
	case "on":
	case "off":
		incremental = false
	default:
		fmt.Fprintf(os.Stderr, "bf4-bench: -incremental must be on or off, got %q\n", *incrMode)
		os.Exit(2)
	}

	all := *run == "all"
	ok := false
	dispatch := func(name string, fn func() error) {
		if !all && *run != name {
			return
		}
		ok = true
		fmt.Printf("==> %s\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("    (%s)\n\n", time.Since(start).Round(time.Millisecond))
	}

	dispatch("table1", func() error {
		var (
			rows []experiments.Table1Row
			ms   []experiments.Table1Metrics
			err  error
		)
		switch {
		case !incremental || *jsonOut:
			// Pinning -incremental or emitting BENCH_table1.json both need
			// the metric registry threaded through every run.
			rows, ms, err = experiments.Table1Incremental(*switchScale, *jobs, incremental)
		case *metrics:
			rows, ms, err = experiments.Table1WithMetrics(*switchScale, *jobs)
		default:
			rows, err = experiments.Table1(*switchScale, *jobs)
		}
		if err != nil {
			return err
		}
		if *stable {
			fmt.Print(experiments.RenderTable1Stable(rows))
		} else {
			fmt.Print(experiments.RenderTable1(rows))
		}
		if *metrics {
			fmt.Println("metrics:")
			fmt.Print(experiments.RenderTable1Metrics(ms))
		}
		if *jsonOut {
			data, err := experiments.Table1JSON(rows, ms, incremental)
			if err != nil {
				return err
			}
			if err := os.WriteFile("BENCH_table1.json", data, 0o644); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_table1.json")
		}
		return nil
	})

	dispatch("discharge", func() error {
		rows, err := experiments.Discharge(*switchScale, *jobs, true)
		if err != nil {
			return err
		}
		if *stable {
			fmt.Print(experiments.RenderDischargeStable(rows))
		} else {
			fmt.Print(experiments.RenderDischarge(rows))
		}
		return nil
	})

	dispatch("rewrite", func() error {
		rows, err := experiments.RewriteAblation(*switchScale, *jobs)
		if err != nil {
			return err
		}
		if *stable {
			fmt.Print(experiments.RenderRewriteStable(rows))
		} else {
			fmt.Print(experiments.RenderRewrite(rows))
		}
		if *jsonOut {
			data, err := experiments.RewriteJSON(rows)
			if err != nil {
				return err
			}
			if err := os.WriteFile("BENCH_rewrite.json", data, 0o644); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_rewrite.json")
		}
		return nil
	})

	dispatch("incremental", func() error {
		rows, err := experiments.IncrementalAblation(*switchScale, *jobs)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderIncrementalStable(rows))
		if *jsonOut {
			data, err := experiments.IncrementalJSON(rows)
			if err != nil {
				return err
			}
			if err := os.WriteFile("BENCH_incremental.json", data, 0o644); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_incremental.json")
		}
		return nil
	})

	dispatch("slicing", func() error {
		r, err := experiments.Slicing(*switchScale, *jobs)
		if err != nil {
			return err
		}
		fmt.Printf("instructions: %d total, %d in slice (%.1f%%)\n",
			r.TotalInstructions, r.SliceInstructions,
			100*float64(r.SliceInstructions)/float64(r.TotalInstructions))
		fmt.Printf("model-check time: %s with slicing, %s without (%.2fx)\n",
			r.TimeWithSlicing.Round(time.Millisecond), r.TimeWithout.Round(time.Millisecond),
			float64(r.TimeWithout)/float64(r.TimeWithSlicing))
		fmt.Printf("formula DAG nodes: %d with slicing, %d without (%.2fx smaller)\n",
			r.FormulaWith, r.FormulaWithout, float64(r.FormulaWithout)/float64(r.FormulaWith))
		fmt.Printf("SAT propagations: %d with, %d without\n", r.PropagationsWith, r.PropagationsWithout)
		fmt.Printf("reachable bugs agree: %d vs %d\n", r.BugsWith, r.BugsWithout)
		return nil
	})

	dispatch("infer", func() error {
		r, err := experiments.InferAblation(*switchScale, *jobs)
		if err != nil {
			return err
		}
		fmt.Printf("total reachable bugs: %d\n", r.TotalBugs)
		fmt.Printf("Fast-Infer: controls %d in %s\n", r.FastInferControlled, r.FastInferTime.Round(time.Microsecond))
		fmt.Printf("Infer:      controls %d in %s (%d solver iterations)\n",
			r.InferControlled, r.InferTime.Round(time.Millisecond), r.InferIterations)
		fmt.Printf("speedup: %.0fx\n", float64(r.InferTime)/float64(max64(int64(r.FastInferTime), 1)))
		return nil
	})

	dispatch("multitable", func() error {
		r, err := experiments.MultiTable(*switchScale, *jobs)
		if err != nil {
			return err
		}
		fmt.Printf("controlled without multi-table: %d/%d; with: %d/%d (+%d)\n",
			r.Baseline, r.TotalBugs, r.WithHeuristic, r.TotalBugs, r.ExtraControlled)
		return nil
	})

	dispatch("dontcare", func() error {
		r, err := experiments.DontCare(*switchScale, *jobs)
		if err != nil {
			return err
		}
		fmt.Printf("controlled without dontCare: %d/%d; with: %d/%d (+%d)\n",
			r.Baseline, r.TotalBugs, r.WithHeuristic, r.TotalBugs, r.ExtraControlled)
		return nil
	})

	dispatch("p4v", func() error {
		r, err := experiments.P4V(*switchScale)
		if err != nil {
			return err
		}
		fmt.Printf("p4v-approx (single query): bug found=%v in %s — then a human writes annotations\n",
			r.P4VFoundBug, r.P4VTime.Round(time.Millisecond))
		fmt.Printf("bf4 (full loop): %d bugs -> %d after fixes, %d keys inferred automatically, in %s\n",
			r.BF4Bugs, r.BF4AfterFixes, r.BF4KeysInferred, r.BF4Time.Round(time.Millisecond))
		return nil
	})

	dispatch("vera", func() error {
		r, err := experiments.VeraCompare(*switchScale, *veraBudget)
		if err != nil {
			return err
		}
		fmt.Printf("concrete snapshot: %d paths, %d bugs, %s, coverage %.0f%% (completed=%v)\n",
			r.ConcretePaths, r.ConcreteBugs, r.ConcreteTime.Round(time.Millisecond),
			100*r.ConcreteCoverage, r.ConcreteComplete)
		fmt.Printf("symbolic entries:  %d paths, %d bugs, %s, coverage %.0f%% (completed=%v)\n",
			r.SymbolicPaths, r.SymbolicBugs, r.SymbolicTime.Round(time.Millisecond),
			100*r.SymbolicCoverage, r.SymbolicComplete)
		return nil
	})

	dispatch("shim", func() error {
		r, err := experiments.Shim(*switchScale, *updates)
		if err != nil {
			return err
		}
		fmt.Printf("%d updates against %d assertions over %d tables (%d rejected)\n",
			r.Updates, r.Assertions, r.TablesCovered, r.Rejected)
		fmt.Printf("per-assertion: p50=%s p90=%s p99=%s max=%s\n",
			r.PerAssertion.P50, r.PerAssertion.P90, r.PerAssertion.P99, r.PerAssertion.Max)
		fmt.Printf("per-update:    p50=%s p90=%s p99=%s max=%s\n",
			r.PerUpdate.P50, r.PerUpdate.P90, r.PerUpdate.P99, r.PerUpdate.Max)
		return nil
	})

	dispatch("shimfleet", func() error {
		r, err := experiments.ShimFleet(*switchScale, *updates)
		if err != nil {
			return err
		}
		fmt.Printf("%d shards, %d updates/shard: %d applied, %d rejected, %d dedup hits\n",
			r.Shards, r.UpdatesPerShard, r.UpdatesApplied, r.UpdatesRejected, r.DedupHits)
		fmt.Printf("failover: %d restores, %d parked writes replayed, %d checkpoints, %d journal appends\n",
			r.Restores, r.ReplayedBatches, r.Checkpoints, r.JournalAppends)
		fmt.Printf("verify-once: %d compile for %d shards (%d cache hits)\n",
			r.AnnotationCompiles, r.Shards, r.AnnotationHits)
		if *jsonOut {
			data, err := experiments.ShimFleetJSON(r)
			if err != nil {
				return err
			}
			if err := os.WriteFile("BENCH_shimfleet.json", data, 0o644); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_shimfleet.json")
		}
		return nil
	})

	dispatch("shimscale", func() error {
		// The headline run replays 1M updates; an explicit -updates (the
		// CI smoke job passes a reduced scale) overrides, and -run all
		// uses the shared -updates default.
		scaleUpdates := 1_000_000
		if all {
			scaleUpdates = *updates
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "updates" {
				scaleUpdates = *updates
			}
		})
		setup, err := experiments.NewShimScaleSetup(*switchScale, scaleUpdates)
		if err != nil {
			return err
		}
		arms := map[string][]bool{"on": {true}, "off": {false}, "both": {true, false}}[*fastpath]
		if arms == nil {
			return fmt.Errorf("-fastpath must be on, off or both, got %q", *fastpath)
		}
		var results []*experiments.ShimScaleResult
		for _, fp := range arms {
			var log io.Writer
			var logFile *os.File
			if *decisionLog != "" {
				suffix := map[bool]string{true: ".on", false: ".off"}[fp]
				logFile, err = os.Create(*decisionLog + suffix)
				if err != nil {
					return err
				}
				log = bufio.NewWriterSize(logFile, 1<<20)
			}
			r, err := setup.Run(scaleUpdates, fp, log)
			if err != nil {
				return err
			}
			if logFile != nil {
				if err := log.(*bufio.Writer).Flush(); err != nil {
					return err
				}
				if err := logFile.Close(); err != nil {
					return err
				}
			}
			results = append(results, r)
			fmt.Printf("fastpath=%-5v %d updates in %s: %.0f updates/s (%d accepted, %d rejected; %d fast / %d slow evals)\n",
				fp, r.Updates, time.Duration(r.ElapsedNs).Round(time.Millisecond),
				r.UpdatesPerSec, r.Accepted, r.Rejected, r.FastHits, r.SlowHits)
			if *jsonOut {
				name := "BENCH_shimscale.json"
				if !fp {
					name = "BENCH_shimscale_off.json"
				}
				data, err := experiments.ShimScaleJSON(r)
				if err != nil {
					return err
				}
				if err := os.WriteFile(name, data, 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", name)
			}
		}
		if len(results) == 2 {
			on, off := results[0], results[1]
			if on.Accepted != off.Accepted || on.Rejected != off.Rejected {
				return fmt.Errorf("tiers disagree: on=%d/%d off=%d/%d accepted/rejected",
					on.Accepted, on.Rejected, off.Accepted, off.Rejected)
			}
			fmt.Printf("speedup: %.1fx (identical decisions on both tiers)\n",
				on.UpdatesPerSec/off.UpdatesPerSec)
		}
		return nil
	})

	dispatch("overhead", func() error {
		r, err := experiments.KeyOverhead(*switchScale)
		if err != nil {
			return err
		}
		fmt.Printf("keys: %d existing, %d added (%.1f%%)\n", r.KeysBefore, r.KeysAdded, r.KeyPercent)
		fmt.Printf("match bits added: %d (%.2f bits/table avg)\n", r.BitsAdded, r.BitsPerTable)
		fmt.Printf("tables touched: %d of %d (%.1f%%)\n", r.TablesTouched, r.TablesTotal, r.TablePercent)
		return nil
	})

	dispatch("stages", func() error {
		r, err := experiments.Stages("simple_nat")
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d stages original; %d with inline guards (%.1fx); %d with bf4 key fixes\n",
			r.Program, r.Original, r.WithGuards,
			float64(r.WithGuards)/float64(r.Original), r.WithKeys)
		return nil
	})

	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
