package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"bf4/internal/progs"
)

// TestMain re-executes the test binary as the bf4 command when
// BF4_TEST_MAIN is set, so the exit-code contract (0 clean, 1 findings,
// 2 usage or parse error) is tested against the real main().
func TestMain(m *testing.M) {
	if os.Getenv("BF4_TEST_MAIN") == "1" {
		os.Args = append([]string{"bf4"}, os.Args[1:]...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runBF4 runs the command form with the given arguments and returns its
// combined output and exit code.
func runBF4(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BF4_TEST_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("bf4 %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out), ee.ExitCode()
}

// writePropFixture writes the generated prop-exercise program and its
// spec into a temp dir and returns their paths.
func writePropFixture(t *testing.T) (p4, props string) {
	t.Helper()
	dir := t.TempDir()
	src, spec := progs.GeneratePropSwitch(2, 1)
	p4 = filepath.Join(dir, "propswitch.p4")
	props = filepath.Join(dir, "propswitch.props")
	if err := os.WriteFile(p4, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(props, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return p4, props
}

func TestLintPropsExitFindings(t *testing.T) {
	// The generated family has confirmed violations: exit 1.
	out, code := runBF4(t, "lint", "-props", "-family", "props", "-switch-scale", "2")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (confirmed violations)\n%s", code, out)
	}
	if !strings.Contains(out, "property violated") || !strings.Contains(out, "{flow:") {
		t.Errorf("output lacks a confirmed violation with witness:\n%s", out)
	}
	if !strings.Contains(out, "props: ") {
		t.Errorf("output lacks the props summary line:\n%s", out)
	}
}

func TestLintPropsExitClean(t *testing.T) {
	// Only the statically-provable assert: exit 0.
	p4, _ := writePropFixture(t)
	spec := filepath.Join(t.TempDir(), "clean.props")
	if err := os.WriteFile(spec, []byte("@assert(meta.m.guard == 8w7)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runBF4(t, "lint", "-props", "-spec", spec, p4)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (property discharged)\n%s", code, out)
	}
	if !strings.Contains(out, "discharged statically") {
		t.Errorf("output lacks the discharged verdict:\n%s", out)
	}
}

func TestLintPropsExitUsage(t *testing.T) {
	p4, _ := writePropFixture(t)

	// Malformed spec file: exit 2.
	bad := filepath.Join(t.TempDir(), "bad.props")
	if err := os.WriteFile(bad, []byte("@assert(oops\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := runBF4(t, "lint", "-props", "-spec", bad, p4); code != 2 {
		t.Errorf("malformed spec: exit %d, want 2\n%s", code, out)
	}

	// Missing spec file: exit 2.
	if out, code := runBF4(t, "lint", "-props", "-spec", "/nonexistent.props", p4); code != 2 {
		t.Errorf("missing spec: exit %d, want 2\n%s", code, out)
	}

	// Property referencing an unknown field: exit 2.
	badType := filepath.Join(t.TempDir(), "badtype.props")
	if err := os.WriteFile(badType, []byte("@assert(hdr.nosuch.field == 1)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := runBF4(t, "lint", "-props", "-spec", badType, p4); code != 2 {
		t.Errorf("typecheck error: exit %d, want 2\n%s", code, out)
	}

	// No input at all: exit 2.
	if out, code := runBF4(t, "lint", "-props"); code != 2 {
		t.Errorf("no input: exit %d, want 2\n%s", code, out)
	}
}

func TestCheckAssertLoop(t *testing.T) {
	// The full verify→infer loop: the selection property is controlled
	// by inferred annotations, the data property stays violated, and the
	// command itself succeeds (findings go to the spec, not exit codes).
	p4, props := writePropFixture(t)
	out, code := runBF4(t, "-check=assert", "-prop-spec", props, "-render", p4)
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	for _, want := range []string{
		"controlled by inferred annotations",
		"VIOLATED (uncontrolled after inference)",
		"assert: 2 hold, 1 controlled after inference, 1 violated",
		"-- property",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestCheckAssertUsageErrors(t *testing.T) {
	p4, props := writePropFixture(t)

	// -prop-spec without -check=assert is a usage error.
	if out, code := runBF4(t, "-prop-spec", props, p4); code == 0 {
		t.Errorf("-prop-spec without -check=assert: exit %d, want non-zero\n%s", code, out)
	}

	// Malformed spec under -check=assert: exit 2.
	bad := filepath.Join(t.TempDir(), "bad.props")
	if err := os.WriteFile(bad, []byte("@assert(oops\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := runBF4(t, "-check=assert", "-prop-spec", bad, p4); code != 2 {
		t.Errorf("malformed spec: exit %d, want 2\n%s", code, out)
	}
}
