// Command bf4 is the compile-time half of the system: it verifies a P4
// program, infers controller annotations, proposes fixes and emits the
// artifacts the runtime shim consumes.
//
// Usage:
//
//	bf4 [flags] program.p4
//	bf4 [flags] -corpus simple_nat
//	bf4 [flags] -switch-scale 8
//
// Flags:
//
//	-spec out.json     write the controller assertions + table schemas
//	-fixed out.p4      write the fixed program (keys added)
//	-render            print the SQL-like assertion rendering
//	-no-slice          disable bug-reachability slicing
//	-rewrite on|off    term-level simplification before bit-blasting
//	-incremental on|off  persistent solver per slice with clause reuse,
//	                   shared CNF and inprocessing (verdicts identical)
//	-no-dontcare       disable dontCare-widened inference
//	-no-multitable     disable the multi-table heuristic
//	-j N               inference worker pool size (0 = GOMAXPROCS);
//	                   output is identical for every value
//	-metrics-json f    write run metrics (counters, gauges, histograms)
//	                   as JSON to f ("-" for stdout)
//	-trace-out f       write the hierarchical phase-timing tree to f
//	                   ("-" for stdout)
//	-v                 verbose: list every bug with its verdict
package main

import (
	"flag"
	"fmt"
	"os"

	"bf4/internal/analysis"
	"bf4/internal/driver"
	"bf4/internal/ir"
	"bf4/internal/obs"
	"bf4/internal/p4/parser"
	"bf4/internal/p4/types"
	"bf4/internal/progs"
	"bf4/internal/prop"
	"bf4/internal/spec"
)

// gatherProps collects the properties for a -check=assert run: source
// comments in the program plus an optional .props spec file.
func gatherProps(name, src, specFile string) ([]*prop.Property, error) {
	props, err := prop.ExtractSource(name, src)
	if err != nil {
		return nil, err
	}
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		ps, err := prop.ParseSpecFile(specFile, data)
		if err != nil {
			return nil, err
		}
		props = append(props, ps...)
	}
	prop.Sort(props)
	return props, nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		lintMain(os.Args[2:])
		return
	}
	var (
		corpusName   = flag.String("corpus", "", "analyze a named corpus program (see -list)")
		list         = flag.Bool("list", false, "list corpus programs and exit")
		switchScale  = flag.Int("switch-scale", 0, "analyze a generated switch program at this scale")
		specOut      = flag.String("spec", "", "write controller assertions (JSON) to this file")
		fixedOut     = flag.String("fixed", "", "write the fixed P4 program to this file")
		render       = flag.Bool("render", false, "print assertions in SQL-like form")
		noSlice      = flag.Bool("no-slice", false, "disable slicing")
		noDontCare   = flag.Bool("no-dontcare", false, "disable dontCare handling")
		noMultiTable = flag.Bool("no-multitable", false, "disable the multi-table heuristic")
		verbose      = flag.Bool("v", false, "verbose bug listing")
		showTrace    = flag.Bool("trace", false, "print a counterexample trace for each reachable bug")
		jobs         = flag.Int("j", 0, "inference worker pool size (0 = GOMAXPROCS; results identical for every value)")
		analysisMode = flag.String("analysis", "on", "static-analysis pre-pass: on discharges statically-safe checks before the solver, off runs every query (verdicts are identical either way)")
		rewriteMode  = flag.String("rewrite", "on", "term-level rewrite engine: on simplifies formulas through the known-bits + interval domain before bit-blasting, off blasts them as built (verdicts are identical either way)")
		incrMode     = flag.String("incremental", "on", "incremental solver core: on keeps one persistent solver per slice with clause reuse, shared CNF and inprocessing between checks, off runs each check from the asserted base (verdicts are identical either way)")
		metricsOut   = flag.String("metrics-json", "", "write run metrics as JSON to this file (\"-\" for stdout; verdicts are identical with metrics on or off)")
		traceOut     = flag.String("trace-out", "", "write the hierarchical phase-timing tree to this file (\"-\" for stdout)")
		check        = flag.String("check", "", "enable extra bug classes: iflow adds information-flow leak checks (sensitive data reaching egress-visible sinks); assert compiles user @assert/@assume properties (source comments plus -prop-spec) into the verified set")
		propSpec     = flag.String("prop-spec", "", "with -check=assert: read additional @assert/@assume properties from this .props spec file")
	)
	flag.Parse()

	if *list {
		for _, p := range progs.All() {
			fmt.Printf("%-22s %s\n", p.Name, p.Description)
		}
		return
	}

	name, src := "", ""
	switch {
	case *corpusName != "":
		p := progs.Get(*corpusName)
		if p == nil {
			fatalf("unknown corpus program %q (use -list)", *corpusName)
		}
		name, src = p.Name, p.Source
	case *switchScale > 0:
		name, src = fmt.Sprintf("switch@%d", *switchScale), progs.GenerateSwitch(*switchScale)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		name, src = flag.Arg(0), string(data)
	default:
		flag.Usage()
		os.Exit(2)
	}

	cfg := driver.DefaultConfig()
	switch *analysisMode {
	case "on":
		cfg.Analysis = true
	case "off":
		cfg.Analysis = false
	default:
		fatalf("bf4: -analysis must be on or off, got %q", *analysisMode)
	}
	switch *rewriteMode {
	case "on":
		cfg.Rewrite = true
	case "off":
		cfg.Rewrite = false
	default:
		fatalf("bf4: -rewrite must be on or off, got %q", *rewriteMode)
	}
	switch *incrMode {
	case "on":
		cfg.Incremental = true
	case "off":
		cfg.Incremental = false
	default:
		fatalf("bf4: -incremental must be on or off, got %q", *incrMode)
	}
	checkAssert := false
	switch *check {
	case "":
	case "iflow":
		cfg.IR.CheckInfoFlow = true
		cfg.IR.TaintDefaultPolicy = true
	case "assert":
		checkAssert = true
		props, err := gatherProps(name, src, *propSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		if len(props) == 0 {
			fatalf("bf4: -check=assert found no properties (write // @assert(...) comments or pass -prop-spec)")
		}
		cfg.IR.Instrument = prop.Instrumenter(props)
	default:
		fatalf("bf4: -check must be empty, iflow or assert, got %q", *check)
	}
	if *propSpec != "" && !checkAssert {
		fatalf("bf4: -prop-spec requires -check=assert")
	}
	cfg.Slicing = !*noSlice
	cfg.IR.DontCare = !*noDontCare
	cfg.Infer.UseDontCare = !*noDontCare
	cfg.Infer.UseMultiTable = !*noMultiTable
	cfg.Workers = *jobs
	if *metricsOut != "" {
		cfg.Obs = obs.NewRegistry()
	}
	if *traceOut != "" {
		cfg.Trace = obs.StartSpan(name)
	}

	res, err := driver.Run(name, src, cfg)
	if err != nil {
		fatalf("bf4: %v", err)
	}
	cfg.Trace.End()

	fmt.Println(res.Summary())
	if res.Analysis != nil {
		st := res.Analysis.Stats
		fmt.Printf("analysis: discharged %d/%d checks statically (%d via header-validity alone); %d lint diagnostic(s)\n",
			st.Discharged, st.BugChecks, st.DischargedValidity, len(res.Analysis.Diags))
	}
	if checkAssert {
		violated, controlled, hold := 0, 0, 0
		for _, b := range res.InitialRep.Bugs {
			if b.Kind != ir.BugAssertFail || b.Node.Prop == nil {
				continue
			}
			info := b.Node.Prop
			switch {
			case !b.Reachable:
				hold++
				fmt.Printf("assert %s (%s): holds\n", info.Text, info.Origin)
			case res.InferResult.Controlled[b.Node]:
				controlled++
				fmt.Printf("assert %s (%s): violated under arbitrary entries; controlled by inferred annotations\n", info.Text, info.Origin)
			default:
				violated++
				fmt.Printf("assert %s (%s): VIOLATED (uncontrolled after inference)\n", info.Text, info.Origin)
			}
		}
		fmt.Printf("assert: %d hold, %d controlled after inference, %d violated\n", hold, controlled, violated)
	}
	if *verbose {
		for _, b := range res.InitialRep.Bugs {
			verdict := "unreachable"
			if b.Reachable {
				verdict = "REACHABLE"
				if res.InferResult.Controlled[b.Node] {
					verdict = "controlled"
				}
			}
			fmt.Printf("  %-11s %s\n", verdict, b.Description())
		}
	}
	if *showTrace {
		for _, b := range res.InitialRep.Bugs {
			if !b.Reachable {
				continue
			}
			tr, err := res.Initial.Counterexample(b)
			if err != nil {
				fmt.Printf("trace unavailable: %v\n", err)
				continue
			}
			fmt.Print(res.Initial.RenderTrace(b, tr))
		}
	}
	if len(res.Fixes.Keys) > 0 || len(res.Fixes.Special) > 0 || len(res.Fixes.Unfixable) > 0 {
		fmt.Print(res.Fixes.Describe())
	}
	for _, b := range res.Dataplane {
		fmt.Printf("dataplane bug (fix the P4 code): %s\n", b.Description())
	}

	finalPl := res.Fixed
	if finalPl == nil {
		finalPl = res.Initial
	}
	file := spec.Build(name, finalPl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)
	if *render {
		fmt.Print(file.Render())
	}
	if *specOut != "" {
		data, err := file.Marshal()
		if err != nil {
			fatalf("marshal spec: %v", err)
		}
		if err := os.WriteFile(*specOut, data, 0o644); err != nil {
			fatalf("write spec: %v", err)
		}
		fmt.Printf("wrote %d assertions to %s\n", len(file.Assertions), *specOut)
	}
	if *fixedOut != "" {
		if res.FixedSource == "" {
			fmt.Println("no fixes needed; fixed program not written")
		} else if err := os.WriteFile(*fixedOut, []byte(res.FixedSource), 0o644); err != nil {
			fatalf("write fixed program: %v", err)
		} else {
			fmt.Printf("wrote fixed program to %s\n", *fixedOut)
		}
	}
	if *metricsOut != "" {
		data, err := cfg.Obs.JSON()
		if err != nil {
			fatalf("render metrics: %v", err)
		}
		writeOut(*metricsOut, append(data, '\n'))
	}
	if *traceOut != "" {
		writeOut(*traceOut, []byte(cfg.Trace.RenderString()))
	}
}

// writeOut writes data to a file, or to stdout when path is "-".
func writeOut(path string, data []byte) {
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
}

// lintMain implements `bf4 lint`: run only the static-analysis layer and
// report diagnostics, without any solver work. Exit status is 1 when an
// error-severity diagnostic (a definite static bug) is found, 2 on usage
// or compile failure, 0 otherwise.
func lintMain(args []string) {
	fs := flag.NewFlagSet("bf4 lint", flag.ExitOnError)
	var (
		corpusName  = fs.String("corpus", "", "lint a named corpus program")
		switchScale = fs.Int("switch-scale", 0, "lint a generated switch program at this scale")
		jsonOut     = fs.Bool("json", false, "emit diagnostics as JSON")
		taint       = fs.Bool("taint", false, "run the information-flow (taint) analysis instead of the lint passes: dataflow alarms at egress-visible sinks, each confirmed or dismissed by the solver")
		taintPolicy = fs.String("taint-policy", "default", "taint source policy: default (annotations + built-in sensitive fields) or annot (annotations only)")
		taintFamily = fs.String("taint-family", "", "lint a generated taint-exercise program: leaky or clean (sized by -switch-scale, placed by -taint-seed)")
		taintSeed   = fs.Int("taint-seed", 1, "placement seed for -taint-family generation (deterministic per seed)")
		propsRun    = fs.Bool("props", false, "check user @assert/@assume properties instead of the lint passes: each assert is discharged statically, confirmed with a packet witness, or dismissed as infeasible by the solver")
		specFile    = fs.String("spec", "", "with -props: read additional properties from this .props spec file")
		family      = fs.String("family", "", "lint a generated exercise program: props (a pipeline plus a .props spec covering all three verdict tiers; sized by -switch-scale, placed by -seed)")
		famSeed     = fs.Int("seed", 1, "placement seed for -family generation (deterministic per seed)")
		jobs        = fs.Int("j", 0, "confirmation solver workers (0 = 1; output identical for every value)")
		incrMode    = fs.String("incremental", "on", "persistent confirmation solver with retractable scopes: on|off (output identical either way)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bf4 lint [-json] [-taint] [-props] (program.p4 | -corpus name | -switch-scale n | -taint-family leaky|clean | -family props)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	name, src := "", ""
	var extraProps []*prop.Property
	switch {
	case *family != "":
		if *family != "props" {
			fatalf("bf4 lint: -family must be props, got %q", *family)
		}
		scale := *switchScale
		if scale <= 0 {
			scale = 4
		}
		name = fmt.Sprintf("propswitch@%d.p4", scale)
		genSrc, genProps := progs.GeneratePropSwitch(scale, *famSeed)
		src = genSrc
		if *specFile == "" {
			specName := fmt.Sprintf("propswitch@%d.props", scale)
			ps, err := prop.ParseSpecFile(specName, []byte(genProps))
			if err != nil {
				fatalf("bf4 lint: generated spec: %v", err)
			}
			extraProps = ps
		}
		*propsRun = true
	case *taintFamily != "":
		if *taintFamily != "leaky" && *taintFamily != "clean" {
			fatalf("bf4 lint: -taint-family must be leaky or clean, got %q", *taintFamily)
		}
		scale := *switchScale
		if scale <= 0 {
			scale = 4
		}
		name = fmt.Sprintf("taintswitch-%s@%d.p4", *taintFamily, scale)
		src = progs.GenerateTaintSwitch(scale, *taintSeed, *taintFamily == "leaky")
	case *corpusName != "":
		p := progs.Get(*corpusName)
		if p == nil {
			fatalf("unknown corpus program %q (use bf4 -list)", *corpusName)
		}
		name, src = p.Name+".p4", p.Source
	case *switchScale > 0:
		name, src = fmt.Sprintf("switch@%d.p4", *switchScale), progs.GenerateSwitch(*switchScale)
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		name, src = fs.Arg(0), string(data)
	default:
		fs.Usage()
		os.Exit(2)
	}

	if *propsRun {
		if *specFile != "" {
			data, err := os.ReadFile(*specFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(2)
			}
			ps, err := prop.ParseSpecFile(*specFile, data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(2)
			}
			extraProps = append(extraProps, ps...)
		}
		pcfg := driver.DefaultPropConfig()
		pcfg.Workers = *jobs
		switch *incrMode {
		case "on":
			pcfg.Incremental = true
		case "off":
			pcfg.Incremental = false
		default:
			fatalf("bf4 lint: -incremental must be on or off, got %q", *incrMode)
		}
		rep, err := driver.Props(name, src, extraProps, pcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		if *jsonOut {
			data, err := rep.RenderJSON(name)
			if err != nil {
				fatalf("render: %v", err)
			}
			fmt.Printf("%s\n", data)
		} else {
			fmt.Print(rep.RenderText(name))
		}
		for _, d := range rep.Diags {
			if d.Severity == analysis.SevError {
				os.Exit(1)
			}
		}
		return
	}

	if *specFile != "" {
		fatalf("bf4 lint: -spec requires -props")
	}

	if *taint {
		tcfg := driver.DefaultTaintConfig()
		tcfg.Policy = *taintPolicy
		tcfg.Workers = *jobs
		switch *incrMode {
		case "on":
			tcfg.Incremental = true
		case "off":
			tcfg.Incremental = false
		default:
			fatalf("bf4 lint: -incremental must be on or off, got %q", *incrMode)
		}
		rep, err := driver.Taint(name, src, tcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		if *jsonOut {
			data, err := rep.RenderJSON(name)
			if err != nil {
				fatalf("render: %v", err)
			}
			fmt.Printf("%s\n", data)
		} else {
			fmt.Print(rep.RenderText(name))
		}
		for _, d := range rep.Diags {
			if d.Severity == analysis.SevError {
				os.Exit(1)
			}
		}
		return
	}

	res, err := Lint(name, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		data, err := analysis.RenderJSON(name, res.Diags)
		if err != nil {
			fatalf("render: %v", err)
		}
		fmt.Printf("%s\n", data)
	} else {
		fmt.Print(analysis.RenderText(name, res.Diags))
	}
	for _, d := range res.Diags {
		if d.Severity == analysis.SevError {
			os.Exit(1)
		}
	}
}

// Lint compiles src through the frontend and runs the static-analysis
// layer. Frontend errors come back with name: prefixed to every
// diagnostic line (file:line:col).
func Lint(name, src string) (*analysis.Result, error) {
	prog, err := parser.ParseFile(name, src)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, parser.PrefixFile(name, err)
	}
	p, err := ir.Build(prog, info, ir.DefaultOptions())
	if err != nil {
		return nil, parser.PrefixFile(name, err)
	}
	return analysis.Run(p, prog), nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
