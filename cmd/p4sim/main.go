// Command p4sim executes packets through the dataplane simulator against
// a concrete snapshot — a miniature software switch for the corpus
// programs. Scenarios are JSON files:
//
//	{
//	  "entries": {"nat": [{"keys": [{"value":"1"},{"value":"167772161","mask":"4294967295"}],
//	                        "action": "nat_hit", "params": ["42"]}]},
//	  "packets": [{"hdr.ethernet.etherType": "2048", "hdr.ipv4.srcAddr": "167772161"}]
//	}
//
// Usage:
//
//	p4sim -corpus simple_nat scenario.json
//	p4sim -program prog.p4 scenario.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bf4/internal/core"
	"bf4/internal/dataplane"
	"bf4/internal/ir"
	"bf4/internal/p4runtime"
	"bf4/internal/progs"
)

type scenario struct {
	Entries map[string][]*p4runtime.EntryMsg `json:"entries"`
	Packets []map[string]string              `json:"packets"`
}

func main() {
	var (
		corpusName  = flag.String("corpus", "", "corpus program name")
		programPath = flag.String("program", "", "P4 source file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatalf("usage: p4sim (-corpus name | -program file.p4) scenario.json")
	}

	src := ""
	switch {
	case *corpusName != "":
		p := progs.Get(*corpusName)
		if p == nil {
			fatalf("unknown corpus program %q", *corpusName)
		}
		src = p.Source
	case *programPath != "":
		data, err := os.ReadFile(*programPath)
		if err != nil {
			fatalf("%v", err)
		}
		src = string(data)
	default:
		fatalf("need -corpus or -program")
	}

	pl, err := core.Compile(src, ir.DefaultOptions(), true)
	if err != nil {
		fatalf("compile: %v", err)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	var sc scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		fatalf("scenario: %v", err)
	}

	snap := dataplane.NewSnapshot()
	for table, msgs := range sc.Entries {
		for _, m := range msgs {
			e, err := p4runtime.DecodeEntry(m)
			if err != nil {
				fatalf("entry for %s: %v", table, err)
			}
			snap.Insert(table, e)
		}
	}

	for i, pf := range sc.Packets {
		pkt := dataplane.Packet{}
		for name, val := range pf {
			v, err := p4runtime.ParseValue(val)
			if err != nil {
				fatalf("packet %d: %v", i, err)
			}
			pkt[name] = v
		}
		interp := &dataplane.Interp{P: pl.IR, Snapshot: snap, Inputs: pkt}
		tr, err := interp.Run()
		if err != nil {
			fatalf("packet %d: %v", i, err)
		}
		status := "forwarded"
		switch {
		case tr.Bug():
			status = fmt.Sprintf("BUG[%s] %s", tr.Terminal.Bug, tr.Terminal.Comment)
		case tr.EgressSpec() == ir.DropSpec:
			status = "dropped"
		case tr.Terminal.Kind == ir.RejectTerm:
			status = "rejected by parser"
		}
		fmt.Printf("packet %d: %s (egress_spec=%d, %d steps)\n",
			i, status, tr.EgressSpec(), len(tr.Nodes))
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
