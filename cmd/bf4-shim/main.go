// Command bf4-shim runs the runtime sanitization shim: a P4Runtime-like
// TCP server that validates every controller update against the
// assertions bf4 inferred at compile time, maintaining shadow tables and
// rejecting rules that would make a bug reachable (paper §4.4).
//
// Usage:
//
//	bf4-shim -spec assertions.json -listen :9559 [-program prog.p4]
//
// With -program (or -corpus/-switch-scale) the shim also embeds the
// dataplane simulator, enabling "packet" requests that execute against
// the current shadow snapshot.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"bf4/internal/driver"
	"bf4/internal/ir"
	"bf4/internal/p4runtime"
	"bf4/internal/progs"
	"bf4/internal/shim"
	"bf4/internal/spec"
)

func main() {
	var (
		specPath    = flag.String("spec", "", "controller assertions file (from bf4 -spec)")
		listen      = flag.String("listen", "127.0.0.1:9559", "listen address")
		programPath = flag.String("program", "", "P4 source for packet injection (optional)")
		corpusName  = flag.String("corpus", "", "corpus program for packet injection")
		switchScale = flag.Int("switch-scale", 0, "generated switch scale for packet injection")
	)
	flag.Parse()

	src, name := "", ""
	switch {
	case *programPath != "":
		data, err := os.ReadFile(*programPath)
		if err != nil {
			fatalf("%v", err)
		}
		src, name = string(data), *programPath
	case *corpusName != "":
		p := progs.Get(*corpusName)
		if p == nil {
			fatalf("unknown corpus program %q", *corpusName)
		}
		src, name = p.Source, p.Name
	case *switchScale > 0:
		src, name = progs.GenerateSwitch(*switchScale), "switch"
	}

	var file *spec.File
	var prog *ir.Program
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fatalf("%v", err)
		}
		file, err = spec.Parse(data)
		if err != nil {
			fatalf("%v", err)
		}
		if src != "" {
			res, err := driver.Run(name, src, driver.DefaultConfig())
			if err != nil {
				fatalf("compile program: %v", err)
			}
			pl := res.Fixed
			if pl == nil {
				pl = res.Initial
			}
			prog = pl.IR
		}
	} else if src != "" {
		// No spec file: run the full analysis here and serve its output.
		res, err := driver.Run(name, src, driver.DefaultConfig())
		if err != nil {
			fatalf("bf4: %v", err)
		}
		pl := res.Fixed
		if pl == nil {
			pl = res.Initial
		}
		prog = pl.IR
		file = spec.Build(name, pl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)
		fmt.Printf("analyzed %s: %s\n", name, res.Summary())
	} else {
		fatalf("need -spec and/or a program (-program/-corpus/-switch-scale)")
	}

	sh, err := shim.New(file)
	if err != nil {
		fatalf("shim: %v", err)
	}
	srv := &p4runtime.Server{Shim: sh, Prog: prog}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("bf4-shim: %d assertions over %d tables; listening on %s\n",
		len(file.Assertions), len(file.Tables), ln.Addr())
	if err := srv.Serve(ln); err != nil {
		fatalf("serve: %v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
