// Command bf4-shim runs the runtime sanitization shim: a P4Runtime-like
// TCP server that validates every controller update against the
// assertions bf4 inferred at compile time, maintaining shadow tables and
// rejecting rules that would make a bug reachable (paper §4.4).
//
// Usage:
//
//	bf4-shim -spec assertions.json -listen :9559 [-program prog.p4]
//
// With -program (or -corpus/-switch-scale) the shim also embeds the
// dataplane simulator, enabling "packet" requests that execute against
// the current shadow snapshot.
//
// With -state-dir the shim journals every applied update and restarts
// from the snapshot + journal without any controller replay. SIGINT and
// SIGTERM trigger a graceful shutdown: in-flight requests drain, a final
// checkpoint compacts the journal, then the process exits.
//
// With -obs-addr the shim serves observability over HTTP on a second,
// private listener: Prometheus text metrics at /metrics, the same
// document as JSON at /metrics.json, and net/http/pprof profiling under
// /debug/pprof/.
//
// With -shards the shim becomes a fleet service: one shadow-state shard
// per listed switch id, all validating against one program compiled once
// through the annotation cache. A supervisor restores crashed or wedged
// shards from their per-shard snapshot+journal (subdirectories of
// -state-dir); -on-shard-down picks what writes do meanwhile (reject
// with a retryable error, or queue until restore). Requests route by
// their "switch" field; the first listed shard is the default.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bf4/internal/driver"
	"bf4/internal/ir"
	"bf4/internal/obs"
	"bf4/internal/p4runtime"
	"bf4/internal/progs"
	"bf4/internal/shim"
	"bf4/internal/spec"
)

func main() {
	var (
		specPath    = flag.String("spec", "", "controller assertions file (from bf4 -spec)")
		listen      = flag.String("listen", "127.0.0.1:9559", "listen address")
		programPath = flag.String("program", "", "P4 source for packet injection (optional)")
		corpusName  = flag.String("corpus", "", "corpus program for packet injection")
		switchScale = flag.Int("switch-scale", 0, "generated switch scale for packet injection")

		stateDir     = flag.String("state-dir", "", "directory for crash-recovery state (snapshot + journal); in fleet mode each shard gets a subdirectory")
		shards       = flag.String("shards", "", "comma-separated switch ids; non-empty runs the fleet service (one shadow-state shard per switch, program verified once)")
		onShardDown  = flag.String("on-shard-down", "reject", "degraded mode while a shard restores: reject (fail fast, retryable) or queue (park writes until restore)")
		healthIvl    = flag.Duration("health-interval", 250*time.Millisecond, "fleet supervisor health-check tick")
		healthDl     = flag.Duration("health-deadline", 5*time.Second, "declare a shard wedged when one operation holds its lock this long")
		maxConns     = flag.Int("max-conns", 0, "max concurrent controller connections (0 = unlimited)")
		readTimeout  = flag.Duration("read-timeout", 5*time.Minute, "per-connection idle read deadline")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline")
		maxFrame     = flag.Int("max-frame", 1<<20, "max request frame size in bytes")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")
		obsAddr      = flag.String("obs-addr", "", "serve Prometheus /metrics, /metrics.json and /debug/pprof on this address (e.g. 127.0.0.1:9560; empty disables)")
		fastpathMode = flag.String("fastpath", "on", "assertion evaluation tier: on compiles cached annotations to bytecode, off pins the term-DAG slow path (both tiers are decision-identical; see bf4-bench -run shimscale)")
	)
	flag.Parse()

	fastpath := true
	switch *fastpathMode {
	case "on":
	case "off":
		fastpath = false
	default:
		fatalf("bf4-shim: -fastpath must be on or off, got %q", *fastpathMode)
	}

	src, name := "", ""
	switch {
	case *programPath != "":
		data, err := os.ReadFile(*programPath)
		if err != nil {
			fatalf("%v", err)
		}
		src, name = string(data), *programPath
	case *corpusName != "":
		p := progs.Get(*corpusName)
		if p == nil {
			fatalf("unknown corpus program %q", *corpusName)
		}
		src, name = p.Source, p.Name
	case *switchScale > 0:
		src, name = progs.GenerateSwitch(*switchScale), "switch"
	}

	var file *spec.File
	var prog *ir.Program
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fatalf("%v", err)
		}
		file, err = spec.Parse(data)
		if err != nil {
			fatalf("%v", err)
		}
		if src != "" {
			res, err := driver.Run(name, src, driver.DefaultConfig())
			if err != nil {
				fatalf("compile program: %v", err)
			}
			pl := res.Fixed
			if pl == nil {
				pl = res.Initial
			}
			prog = pl.IR
		}
	} else if src != "" {
		// No spec file: run the full analysis here and serve its output.
		res, err := driver.Run(name, src, driver.DefaultConfig())
		if err != nil {
			fatalf("bf4: %v", err)
		}
		pl := res.Fixed
		if pl == nil {
			pl = res.Initial
		}
		prog = pl.IR
		file = spec.Build(name, pl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)
		fmt.Printf("analyzed %s: %s\n", name, res.Summary())
	} else {
		fatalf("need -spec and/or a program (-program/-corpus/-switch-scale)")
	}

	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.NewRegistry()
	}
	srv := &p4runtime.Server{
		Prog:          prog,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
		MaxFrameBytes: *maxFrame,
		MaxConns:      *maxConns,
		Obs:           reg,
	}
	var sh *shim.Shim
	var store *shim.Store
	var fleet *shim.Fleet
	if ids := splitShards(*shards); len(ids) > 0 {
		// Fleet mode: one shadow-state shard per switch, all validating
		// against one compiled program (verified once via the annotation
		// cache), supervised for crash/wedge failover.
		mode, err := shim.ParseOnShardDown(*onShardDown)
		if err != nil {
			fatalf("%v", err)
		}
		fleet = shim.NewFleet(shim.FleetConfig{
			StateRoot:      *stateDir,
			OnShardDown:    mode,
			HealthInterval: *healthIvl,
			HealthDeadline: *healthDl,
			NoFastpath:     !fastpath,
			Obs:            reg,
		})
		for _, id := range ids {
			if _, err := fleet.AddShard(id, file); err != nil {
				fatalf("shard %s: %v", id, err)
			}
		}
		fleet.StartSupervisor()
		srv.Fleet = fleet
		srv.DefaultSwitch = ids[0]
		fmt.Printf("bf4-shim: fleet of %d shards (%s mode, verify-once cache)\n", len(ids), mode)
	} else {
		var err error
		sh, err = shim.New(file)
		if err != nil {
			fatalf("shim: %v", err)
		}
		sh.SetFastpath(fastpath)
		if *stateDir != "" {
			store, err = shim.OpenStore(*stateDir)
			if err != nil {
				fatalf("state dir: %v", err)
			}
			if err := sh.AttachStore(store); err != nil {
				fatalf("restore state: %v", err)
			}
			fmt.Printf("bf4-shim: shadow state restored from %s\n", *stateDir)
		}
		sh.SetObs(reg)
		srv.Shim = sh
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatalf("%v", err)
	}
	if *obsAddr != "" {
		oln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			fatalf("obs listen: %v", err)
		}
		fmt.Printf("bf4-shim: metrics and pprof on http://%s\n", oln.Addr())
		go func() {
			if err := http.Serve(oln, obs.NewMux(reg)); err != nil {
				fmt.Fprintf(os.Stderr, "bf4-shim: obs server: %v\n", err)
			}
		}()
	}
	fmt.Printf("bf4-shim: %d assertions over %d tables; listening on %s\n",
		len(file.Assertions), len(file.Tables), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		if err != nil {
			fatalf("serve: %v", err)
		}
	case s := <-sig:
		fmt.Printf("bf4-shim: %v, draining connections\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "bf4-shim: forced shutdown: %v\n", err)
		}
		if fleet != nil {
			// Stops the supervisor and checkpoints every healthy shard.
			if err := fleet.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "bf4-shim: fleet close: %v\n", err)
			}
		}
		if store != nil {
			if err := sh.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "bf4-shim: final checkpoint: %v\n", err)
			}
			store.Close()
		}
	}
}

// splitShards parses the -shards flag: comma-separated switch ids,
// blanks ignored.
func splitShards(s string) []string {
	var ids []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
