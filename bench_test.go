// Package bf4 holds the repository-level benchmark harness: one
// testing.B benchmark per evaluation artifact (see the experiment index
// in DESIGN.md). `go test -bench=. -benchmem` regenerates every number
// EXPERIMENTS.md reports; cmd/bf4-bench prints the same data as tables.
package bf4

import (
	"testing"
	"time"

	"bf4/internal/baseline"
	"bf4/internal/core"
	"bf4/internal/dataplane"
	"bf4/internal/driver"
	"bf4/internal/experiments"
	"bf4/internal/infer"
	"bf4/internal/ir"
	"bf4/internal/progs"
	"bf4/internal/shim"
	"bf4/internal/spec"
	"bf4/internal/trace"
)

// benchSwitchScale keeps switch-based benchmarks tractable in CI; the
// full-scale numbers come from `bf4-bench -switch-scale 16`.
const benchSwitchScale = 2

func compileSwitch(b *testing.B, slicing bool) *core.Pipeline {
	b.Helper()
	pl, err := core.Compile(progs.GenerateSwitch(benchSwitchScale), ir.DefaultOptions(), slicing)
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

// ---------------------------------------------------------------- E1

func benchTable1Program(b *testing.B, name string) {
	p := progs.Get(name)
	if p == nil {
		b.Fatalf("unknown program %s", name)
	}
	src := p.Source
	if name == "switch" {
		src = progs.GenerateSwitch(benchSwitchScale)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := driver.Run(name, src, driver.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Bugs), "bugs")
		b.ReportMetric(float64(res.BugsAfterInfer), "after-infer")
		b.ReportMetric(float64(res.BugsAfterFixes), "after-fixes")
		b.ReportMetric(float64(res.KeysAdded), "keys")
	}
}

// benchCorpusVerify runs the whole Table 1 corpus (switch included at
// the CI scale) through the parallel experiment driver. Comparing the
// _J1/_J2/_J4 variants on a multi-core machine demonstrates the
// parallel engine's speedup; the row contents are identical for every
// worker count (the determinism tests assert exactly that).
func benchCorpusVerify(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchSwitchScale, workers)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "programs")
	}
}

func BenchmarkCorpusVerify_J1(b *testing.B) { benchCorpusVerify(b, 1) }
func BenchmarkCorpusVerify_J2(b *testing.B) { benchCorpusVerify(b, 2) }
func BenchmarkCorpusVerify_J4(b *testing.B) { benchCorpusVerify(b, 4) }

// benchInferWorkers isolates the per-table-instance inference fan-out
// on the generated switch (compile and FindBugs excluded).
func benchInferWorkers(b *testing.B, workers int) {
	pl := compileSwitch(b, true)
	rep := pl.FindBugs()
	opts := infer.DefaultOptions()
	opts.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := infer.Run(pl, rep, opts)
		b.ReportMetric(float64(rep.NumReachable()-len(res.Uncontrolled)), "controlled")
	}
}

func BenchmarkInferRun_J1(b *testing.B) { benchInferWorkers(b, 1) }
func BenchmarkInferRun_J4(b *testing.B) { benchInferWorkers(b, 4) }

func BenchmarkTable1_SimpleNat(b *testing.B)   { benchTable1Program(b, "simple_nat") }
func BenchmarkTable1_Arp(b *testing.B)         { benchTable1Program(b, "arp") }
func BenchmarkTable1_MplbRouter(b *testing.B)  { benchTable1Program(b, "mplb_router-ppc") }
func BenchmarkTable1_Linearroad(b *testing.B)  { benchTable1Program(b, "linearroad_16") }
func BenchmarkTable1_HeavyHitter(b *testing.B) { benchTable1Program(b, "heavy_hitter_2") }
func BenchmarkTable1_Switch(b *testing.B)      { benchTable1Program(b, "switch") }

// ---------------------------------------------------------------- E2

func BenchmarkSlicingOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pl := compileSwitch(b, true)
		rep := pl.FindBugs()
		b.ReportMetric(float64(pl.SliceStats.SliceInstructions), "instructions")
		b.ReportMetric(float64(rep.NumReachable()), "bugs")
	}
}

func BenchmarkSlicingOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pl := compileSwitch(b, false)
		rep := pl.FindBugs()
		b.ReportMetric(float64(pl.SliceStats.TotalInstructions), "instructions")
		b.ReportMetric(float64(rep.NumReachable()), "bugs")
	}
}

// ---------------------------------------------------------------- E3

func BenchmarkFastInfer(b *testing.B) {
	pl := compileSwitch(b, true)
	rep := pl.FindBugs()
	opts := infer.DefaultOptions()
	opts.UseInfer, opts.UseMultiTable = false, false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := infer.Run(pl, rep, opts)
		b.ReportMetric(float64(rep.NumReachable()-len(res.Uncontrolled)), "controlled")
	}
}

func BenchmarkInfer(b *testing.B) {
	opts := infer.DefaultOptions()
	opts.UseFastInfer, opts.UseMultiTable = false, false
	for i := 0; i < b.N; i++ {
		pl := compileSwitch(b, true)
		rep := pl.FindBugs()
		res := infer.Run(pl, rep, opts)
		b.ReportMetric(float64(rep.NumReachable()-len(res.Uncontrolled)), "controlled")
	}
}

// ---------------------------------------------------------------- E4/E5

func BenchmarkMultiTableHeuristic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pl := compileSwitch(b, true)
		rep := pl.FindBugs()
		res := infer.Run(pl, rep, infer.DefaultOptions())
		b.ReportMetric(float64(len(res.Uncontrolled)), "uncontrolled")
	}
}

func BenchmarkDontCareHeuristic(b *testing.B) {
	opts := infer.DefaultOptions()
	opts.UseMultiTable = false
	for i := 0; i < b.N; i++ {
		pl := compileSwitch(b, true)
		rep := pl.FindBugs()
		res := infer.Run(pl, rep, opts)
		b.ReportMetric(float64(len(res.Uncontrolled)), "uncontrolled")
	}
}

// ---------------------------------------------------------------- E6

func BenchmarkP4VApprox(b *testing.B) {
	pl := compileSwitch(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := baseline.P4VApprox(pl)
		if !r.AnyBugReachable {
			b.Fatal("p4v query must find a bug in the switch")
		}
	}
}

// ---------------------------------------------------------------- E7

func BenchmarkVeraConcrete(b *testing.B) {
	pl := compileSwitch(b, true)
	snap := dataplane.NewSnapshot() // empty snapshot: all tables miss
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := baseline.Vera(pl, baseline.VeraOptions{Snapshot: snap, Timeout: time.Minute})
		b.ReportMetric(float64(r.Paths), "paths")
	}
}

func BenchmarkVeraSymbolic(b *testing.B) {
	pl := compileSwitch(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := baseline.Vera(pl, baseline.VeraOptions{MaxPaths: 2000})
		b.ReportMetric(100*r.Coverage(), "coverage%")
		b.ReportMetric(float64(r.Paths), "paths")
	}
}

// ---------------------------------------------------------------- E8

func buildShimForBench(b *testing.B) (*shim.Shim, *spec.File) {
	b.Helper()
	src := progs.GenerateSwitch(benchSwitchScale)
	res, err := driver.Run("switch", src, driver.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pl := res.Fixed
	if pl == nil {
		pl = res.Initial
	}
	file := spec.Build("switch", pl.IR, res.InitialRep, res.FinalInfer, res.Fixes.Special)
	sh, err := shim.New(file)
	if err != nil {
		b.Fatal(err)
	}
	return sh, file
}

func BenchmarkShimPerUpdate(b *testing.B) {
	sh, file := buildShimForBench(b)
	gen := trace.NewGenerator(7, file)
	updates := gen.Updates(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sh.Validate(updates[i%len(updates)])
	}
}

func BenchmarkShimApplyTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sh, file := buildShimForBench(b)
		gen := trace.NewGenerator(7, file)
		updates := gen.Updates(2000)
		b.StartTimer()
		for _, u := range updates {
			_ = sh.Apply(u)
		}
		st := sh.Stats()
		b.ReportMetric(float64(st.Rejected), "rejected")
	}
}

// ---------------------------------------------------------------- E9/E10

func BenchmarkKeyOverheadAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.KeyOverhead(benchSwitchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.KeyPercent, "key%")
		b.ReportMetric(float64(r.BitsAdded), "bits")
	}
}

func BenchmarkStageModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Stages("simple_nat")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Original), "stages")
		b.ReportMetric(float64(r.WithGuards), "guarded-stages")
	}
}
